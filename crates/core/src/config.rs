//! Whole-twin configuration.
//!
//! §V of the paper: "the generalized version of RAPS inputs configuration
//! files describing the system architecture, the cooling system, the
//! scheduler, and the power system" — [`TwinConfig`] is that file: the
//! RAPS [`SystemConfig`], the AutoCSM [`PlantSpec`], the scheduling
//! policy, the power-delivery variant and the cooling-fidelity backend,
//! all JSON-serialisable.
//!
//! The [`CoolingBackend`] enum is the fidelity selector of the paper's
//! Fig. 2 taxonomy: the same FMI boundary can be served by the L4
//! comprehensive plant, the L3 machine-learned surrogate, or an L2
//! telemetry-trace replay — or left unattached for power-only runs. See
//! `docs/FIDELITY.md` for the level → module mapping.

use crate::levels::TwinLevel;
use crate::online::{OnlineCoolingModel, OnlineSurrogateConfig};
use crate::surrogate::{self, Surrogate, SurrogateCoolingModel};
use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_sim::fmi::CoSimModel;
use exadigit_telemetry::replay::{CoolingTrace, ReplayCoolingModel};
use serde::{Deserialize, Serialize};

/// Where an L3 surrogate backend gets its fitted model from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SurrogateSource {
    /// Train [`surrogate::train_default`] from the config's plant spec
    /// when the twin is built (slow once, then millisecond serving).
    TrainDefault,
    /// Serve a pre-fitted surrogate as-is — the path for sharing one
    /// training run across a whole ensemble.
    Fitted(Surrogate),
}

/// The cooling-fidelity backend attached across the FMI boundary.
///
/// Every variant materialises as a `Box<dyn CoSimModel>` exposing the
/// same `cooling_vars` names, so `RapsSimulation`/`CoolingCoupling`
/// need no per-backend knowledge; heterogeneous ensembles can mix
/// fidelities in one pool pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoolingBackend {
    /// No cooling model (the paper's fast power-only replays: "about
    /// nine minutes ... with cooling, or just three without").
    None,
    /// L4 comprehensive simulation: the AutoCSM-generated transient
    /// plant from [`TwinConfig::plant`].
    Plant,
    /// L3 predictive surrogate serving PUE/cooling power from a fitted
    /// polynomial.
    Surrogate(SurrogateSource),
    /// Adaptive L3/L4: the embedded transient plant serves every query
    /// while per-staging-regime surrogates train online from its
    /// answers; trusted regimes are then served at L3 speed with
    /// automatic L4 fallback outside their observed envelopes
    /// ([`crate::online::OnlineCoolingModel`]).
    Online(OnlineSurrogateConfig),
    /// L2 informative replay answering from a recorded telemetry trace.
    Replay(CoolingTrace),
}

impl CoolingBackend {
    /// The Fig. 2 maturity level this backend realises (`None` for no
    /// cooling attached).
    pub fn level(&self) -> Option<TwinLevel> {
        match self {
            CoolingBackend::None => None,
            CoolingBackend::Replay(_) => Some(TwinLevel::Informative),
            CoolingBackend::Surrogate(_) => Some(TwinLevel::Predictive),
            // Online answers are either the comprehensive plant itself
            // or a fit validated against it, with guaranteed fallback —
            // fidelity is bounded below by L4, not by the surrogate.
            CoolingBackend::Online(_) => Some(TwinLevel::Comprehensive),
            CoolingBackend::Plant => Some(TwinLevel::Comprehensive),
        }
    }

    /// Whether building this backend instantiates the transient plant
    /// model from [`TwinConfig::plant`] (and therefore requires the
    /// system/plant CDU counts to agree).
    pub fn attaches_plant(&self) -> bool {
        matches!(self, CoolingBackend::Plant | CoolingBackend::Online(_))
    }

    /// Materialise the backend as a co-simulation model exposing the
    /// `cooling_vars` contract, or `Ok(None)` for [`CoolingBackend::None`].
    ///
    /// `plant` supplies the L4 model (and the training sweep for
    /// [`SurrogateSource::TrainDefault`]); `num_cdus` is the number of
    /// heat inputs the coupling will resolve.
    pub fn build(
        &self,
        plant: &PlantSpec,
        num_cdus: usize,
    ) -> Result<Option<Box<dyn CoSimModel>>, String> {
        match self {
            CoolingBackend::None => Ok(None),
            CoolingBackend::Plant => {
                let model = CoolingModel::new(plant.clone())?;
                Ok(Some(Box::new(model)))
            }
            CoolingBackend::Surrogate(source) => {
                let fitted = match source {
                    SurrogateSource::TrainDefault => surrogate::train_default(plant)?,
                    SurrogateSource::Fitted(s) => s.clone(),
                };
                Ok(Some(Box::new(SurrogateCoolingModel::for_plant(fitted, plant, num_cdus))))
            }
            CoolingBackend::Online(config) => {
                let model = OnlineCoolingModel::new(plant, config.clone())?;
                Ok(Some(Box::new(model)))
            }
            CoolingBackend::Replay(trace) => {
                Ok(Some(Box::new(ReplayCoolingModel::new(trace.clone(), num_cdus))))
            }
        }
    }
}

/// Configuration of a complete digital twin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwinConfig {
    /// System architecture + power system (Table I schema).
    pub system: SystemConfig,
    /// Cooling-plant specification (AutoCSM schema, Fig. 5 for Frontier).
    pub plant: PlantSpec,
    /// Scheduling policy.
    pub policy: Policy,
    /// Power-delivery variant.
    pub delivery: PowerDelivery,
    /// Cooling-fidelity backend attached across the FMI boundary.
    pub cooling: CoolingBackend,
    /// Output recording cadence, seconds.
    pub record_every_s: u64,
}

impl TwinConfig {
    /// The Frontier twin of the paper (L4 plant backend).
    pub fn frontier() -> Self {
        TwinConfig {
            system: SystemConfig::frontier(),
            plant: PlantSpec::frontier(),
            policy: Policy::FirstFit,
            delivery: PowerDelivery::StandardAC,
            cooling: CoolingBackend::Plant,
            record_every_s: 15,
        }
    }

    /// Frontier without the cooling model (fast replays).
    pub fn frontier_power_only() -> Self {
        TwinConfig { cooling: CoolingBackend::None, ..TwinConfig::frontier() }
    }

    /// Swap in a different cooling backend (builder style).
    pub fn with_backend(mut self, cooling: CoolingBackend) -> Self {
        self.cooling = cooling;
        self
    }

    /// Set the output recording cadence (builder style). 15 s matches
    /// the paper's telemetry quantum. Record boundaries are *not*
    /// events: the kernel backfills the samples a quiet gap spanned in
    /// closed form, so even 1 s recording costs O(events), not
    /// O(samples) (see `DESIGN.md` § "Discrete-event kernel"). The
    /// cadence therefore trades only memory — samples retained — not
    /// speed. Validated by [`TwinConfig::validate`]: must be positive
    /// and at most 7 days.
    pub fn with_record_every_s(mut self, record_every_s: u64) -> Self {
        self.record_every_s = record_every_s;
        self
    }

    /// A Setonix-like multi-partition twin (§V).
    pub fn setonix_like() -> Self {
        TwinConfig {
            system: SystemConfig::setonix_like(),
            plant: PlantSpec::setonix_like(),
            policy: Policy::FirstFit,
            delivery: PowerDelivery::StandardAC,
            cooling: CoolingBackend::Plant,
            record_every_s: 15,
        }
    }

    /// A Marconi100-like twin (§V / PM100).
    pub fn marconi100_like() -> Self {
        TwinConfig {
            system: SystemConfig::marconi100_like(),
            plant: PlantSpec::marconi100_like(),
            policy: Policy::FirstFit,
            delivery: PowerDelivery::StandardAC,
            cooling: CoolingBackend::Plant,
            record_every_s: 15,
        }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Cross-validate the pieces. The system/plant CDU-count match is
    /// only enforced when the selected backend actually instantiates the
    /// plant: a surrogate or replay backend exposes whatever number of
    /// heat inputs the system asks for, so a mismatched (or vestigial)
    /// plant spec is not an error there.
    pub fn validate(&self) -> Result<(), String> {
        self.plant.validate()?;
        if self.cooling.attaches_plant() && self.system.cooling.num_cdus != self.plant.num_cdus {
            return Err(format!(
                "system has {} CDUs but the plant models {}",
                self.system.cooling.num_cdus, self.plant.num_cdus
            ));
        }
        if self.record_every_s == 0 {
            return Err("record_every_s must be positive".into());
        }
        // Catch unit mistakes (milliseconds, epoch stamps): one sample a
        // week is already coarser than any supported study.
        const MAX_RECORD_EVERY_S: u64 = 7 * 86_400;
        if self.record_every_s > MAX_RECORD_EVERY_S {
            return Err(format!(
                "record_every_s = {} exceeds 7 days ({MAX_RECORD_EVERY_S} s) — wrong unit?",
                self.record_every_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TwinConfig::frontier().validate().unwrap();
        TwinConfig::frontier_power_only().validate().unwrap();
        TwinConfig::setonix_like().validate().unwrap();
        TwinConfig::marconi100_like().validate().unwrap();
    }

    #[test]
    fn json_round_trip() {
        let cfg = TwinConfig::frontier();
        let back = TwinConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn cdu_mismatch_detected() {
        let mut cfg = TwinConfig::frontier();
        cfg.system.cooling.num_cdus = 7;
        assert!(cfg.validate().is_err());
        // Without cooling the mismatch is irrelevant.
        cfg.cooling = CoolingBackend::None;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn cdu_mismatch_irrelevant_for_non_plant_backends() {
        // Surrogate and replay backends expose as many heat inputs as the
        // system asks for — the plant CDU count does not constrain them.
        let mut cfg = TwinConfig::frontier();
        cfg.system.cooling.num_cdus = 7;
        cfg.cooling = CoolingBackend::Replay(CoolingTrace::constant(1.06, 5.0e5));
        cfg.validate().expect("replay backend must not require the plant match");
        cfg.cooling = CoolingBackend::Surrogate(SurrogateSource::TrainDefault);
        cfg.validate().expect("surrogate backend must not require the plant match");
    }

    #[test]
    fn backend_levels_follow_fig2() {
        assert_eq!(CoolingBackend::None.level(), None);
        assert_eq!(
            CoolingBackend::Replay(CoolingTrace::constant(1.0, 0.0)).level(),
            Some(TwinLevel::Informative)
        );
        assert_eq!(
            CoolingBackend::Surrogate(SurrogateSource::TrainDefault).level(),
            Some(TwinLevel::Predictive)
        );
        assert_eq!(CoolingBackend::Plant.level(), Some(TwinLevel::Comprehensive));
        // Online embeds the plant and never extrapolates past it, so its
        // fidelity floor — and its level — is comprehensive.
        assert_eq!(
            CoolingBackend::Online(OnlineSurrogateConfig::default()).level(),
            Some(TwinLevel::Comprehensive)
        );
        assert!(CoolingBackend::Plant.attaches_plant());
        assert!(CoolingBackend::Online(OnlineSurrogateConfig::default()).attaches_plant());
        assert!(!CoolingBackend::Surrogate(SurrogateSource::TrainDefault).attaches_plant());
    }

    #[test]
    fn backend_configs_json_round_trip() {
        for cooling in [
            CoolingBackend::None,
            CoolingBackend::Plant,
            CoolingBackend::Online(OnlineSurrogateConfig::default()),
            CoolingBackend::Replay(CoolingTrace::constant(1.07, 4.0e5)),
        ] {
            let cfg = TwinConfig::frontier().with_backend(cooling);
            let back = TwinConfig::from_json(&cfg.to_json()).unwrap();
            assert_eq!(cfg, back);
        }
    }

    #[test]
    fn zero_cadence_rejected() {
        let mut cfg = TwinConfig::frontier();
        cfg.record_every_s = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn record_cadence_builder_validates_bounds() {
        // Hourly recording keeps multi-week studies' output vectors
        // small (the lazy backfill already makes the cadence free in
        // time; memory is what the knob still buys).
        let cfg = TwinConfig::frontier().with_record_every_s(3_600);
        cfg.validate().unwrap();
        assert_eq!(cfg.record_every_s, 3_600);
        // Off-grid cadences (not multiples of the 15 s quantum) are
        // valid — the kernel schedules a separate recurrence for them.
        TwinConfig::frontier().with_record_every_s(7).validate().unwrap();
        // Unit mistakes are caught.
        let err = TwinConfig::frontier().with_record_every_s(8 * 86_400).validate();
        assert!(err.is_err());
        assert!(TwinConfig::frontier().with_record_every_s(0).validate().is_err());
    }

    #[test]
    fn off_grid_record_cadence_runs_and_records() {
        let cfg = TwinConfig::frontier_power_only().with_record_every_s(60);
        let mut twin = crate::twin::DigitalTwin::new(cfg).unwrap();
        twin.run(600).unwrap();
        // 60 s cadence over 600 s: 10 samples.
        assert_eq!(twin.outputs().system_power_w.len(), 10);
    }
}
