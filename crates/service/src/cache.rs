//! Response cache keyed by `(snapshot id, scenario fingerprint)`.
//!
//! Cache coherence rests on two determinism guarantees: a snapshot is
//! immutable, and [`crate::run_whatif`] is a pure function of
//! `(snapshot, spec)` — bit-identical at any pool width (per-draw RNG
//! streams are index-keyed and reductions fold in index order). The
//! same question asked of the same frozen state therefore always has
//! the same answer, and memoising it is sound.
//!
//! The **scenario fingerprint** is FNV-1a 64 over the spec's canonical
//! JSON (field order is fixed by declaration order, so equal specs
//! serialise identically). Two specs differing in any field — label
//! included — fingerprint differently; the label is deliberately part
//! of the key so that a re-labelled scenario reads as a new question
//! rather than silently aliasing an old answer.

use crate::query::{WhatIfOutcome, WhatIfSpec};
use std::collections::HashMap;
use std::collections::VecDeque;

/// FNV-1a 64-bit over a byte string.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The scenario half of the cache key: FNV-1a 64 over the spec's
/// canonical JSON.
pub fn scenario_fingerprint(spec: &WhatIfSpec) -> u64 {
    let json = serde_json::to_string(spec).expect("specs serialise");
    fnv1a64(json.as_bytes())
}

/// A bounded FIFO memo of query outcomes.
pub struct QueryCache {
    map: HashMap<(u64, u64), WhatIfOutcome>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Cache holding at most `capacity` outcomes (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a memoised outcome, counting the hit or miss.
    pub fn get(&mut self, snapshot_id: u64, fingerprint: u64) -> Option<WhatIfOutcome> {
        match self.map.get(&(snapshot_id, fingerprint)) {
            Some(out) => {
                self.hits += 1;
                Some(out.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoise an outcome, evicting the oldest entry at capacity.
    pub fn insert(&mut self, snapshot_id: u64, fingerprint: u64, outcome: WhatIfOutcome) {
        let key = (snapshot_id, fingerprint);
        if self.map.insert(key, outcome).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
        }
    }

    /// Drop every entry answered from `snapshot_id` (called when the
    /// snapshot is dropped — its id will never be asked again, and ids
    /// are not reused, but the memory is reclaimed eagerly).
    pub fn invalidate_snapshot(&mut self, snapshot_id: u64) {
        self.map.retain(|&(sid, _), _| sid != snapshot_id);
        self.order.retain(|&(sid, _)| sid != snapshot_id);
    }

    /// Number of memoised outcomes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str) -> WhatIfOutcome {
        WhatIfOutcome {
            label: label.into(),
            from_s: 0,
            to_s: 1,
            jobs_completed: 0,
            avg_power_mw: 1.0,
            power_std_mw: 0.0,
            energy_mwh: 1.0,
            energy_std_mwh: 0.0,
            final_pue: None,
            final_utilization: 0.0,
            draws: 1,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = WhatIfSpec::default();
        assert_eq!(scenario_fingerprint(&a), scenario_fingerprint(&a.clone()));
        let b = WhatIfSpec { horizon_s: 7_200, ..WhatIfSpec::default() };
        assert_ne!(scenario_fingerprint(&a), scenario_fingerprint(&b));
        let c = WhatIfSpec { label: "named".into(), ..WhatIfSpec::default() };
        assert_ne!(scenario_fingerprint(&a), scenario_fingerprint(&c), "label is part of the key");
    }

    #[test]
    fn hit_miss_accounting_and_eviction() {
        let mut cache = QueryCache::new(2);
        assert!(cache.get(1, 10).is_none());
        cache.insert(1, 10, outcome("a"));
        cache.insert(1, 20, outcome("b"));
        assert_eq!(cache.get(1, 10).unwrap().label, "a");
        cache.insert(1, 30, outcome("c")); // evicts (1,10)
        assert!(cache.get(1, 10).is_none(), "FIFO eviction dropped the oldest");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn snapshot_invalidation_is_per_snapshot() {
        let mut cache = QueryCache::new(8);
        cache.insert(1, 10, outcome("a"));
        cache.insert(2, 10, outcome("b"));
        cache.invalidate_snapshot(1);
        assert!(cache.get(1, 10).is_none());
        assert_eq!(cache.get(2, 10).unwrap().label, "b");
    }
}
