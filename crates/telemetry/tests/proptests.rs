//! Property-based tests for telemetry: format round-trips must be
//! lossless (within float printing) for arbitrary records.

use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_sim::TimeSeries;
use exadigit_telemetry::reader::{CsvJobReader, TelemetryReader};
use exadigit_telemetry::schema::JobRecord;
use exadigit_telemetry::writer::{jobs_to_csv, series_from_csv, series_to_csv};
use proptest::prelude::*;

fn arbitrary_record() -> impl Strategy<Value = JobRecord> {
    (
        any::<u64>(),
        "[a-z0-9_-]{1,24}",
        1usize..10_000,
        0u64..86_400,
        0u64..86_400,
        60u64..86_400,
        prop::collection::vec(0.0f32..3_000.0, 0..64),
        prop::collection::vec(0.0f32..3_000.0, 0..64),
    )
        .prop_map(|(id, name, nodes, submit, start, wall, cpu, gpu)| JobRecord {
            job_id: id,
            job_name: name,
            node_count: nodes,
            submit_time_s: submit,
            start_time_s: start,
            wall_time_s: wall,
            cpu_power_w: cpu,
            gpu_power_w: gpu,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV write → read is lossless for arbitrary job records.
    #[test]
    fn csv_round_trip_lossless(records in prop::collection::vec(arbitrary_record(), 0..20)) {
        let csv = jobs_to_csv(&records);
        let back = CsvJobReader.read_jobs(&csv).unwrap();
        prop_assert_eq!(back.len(), records.len());
        for (a, b) in back.iter().zip(&records) {
            prop_assert_eq!(a.job_id, b.job_id);
            prop_assert_eq!(a.node_count, b.node_count);
            prop_assert_eq!(a.submit_time_s, b.submit_time_s);
            prop_assert_eq!(a.wall_time_s, b.wall_time_s);
            prop_assert_eq!(a.cpu_power_w.len(), b.cpu_power_w.len());
            for (x, y) in a.cpu_power_w.iter().zip(&b.cpu_power_w) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }

    /// Time-series CSV round-trips (uniform cadence preserved).
    #[test]
    fn series_csv_round_trip(values in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let s = TimeSeries::from_values(0.0, 15.0, values);
        let csv = series_to_csv(&s, "v");
        let back = series_from_csv(&csv).unwrap();
        prop_assert_eq!(back.len(), s.len());
        prop_assert!((back.dt - 15.0).abs() < 1e-9);
        for (a, b) in back.samples().zip(s.samples()) {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Power → utilization → power round trip is the identity for powers
    /// inside the component envelopes (the paper's linear interpolation).
    #[test]
    fn power_util_round_trip(
        cpu_frac in 0.0f64..1.0,
        gpu_frac in 0.0f64..1.0,
        wall in 60u64..3_600,
    ) {
        let cfg = SystemConfig::frontier().node_power;
        let cpu_w = cfg.cpu_idle_w + cpu_frac * (cfg.cpu_max_w - cfg.cpu_idle_w);
        let gpu_w = cfg.gpu_idle_w + gpu_frac * (cfg.gpu_max_w - cfg.gpu_idle_w);
        let steps = (wall / 15).max(1) as usize;
        let rec = JobRecord {
            job_id: 1,
            job_name: "rt".into(),
            node_count: 4,
            submit_time_s: 0,
            start_time_s: 0,
            wall_time_s: wall,
            cpu_power_w: vec![cpu_w as f32; steps],
            gpu_power_w: vec![gpu_w as f32; steps],
        };
        let job: Job = rec.to_job(&cfg);
        let back = JobRecord::from_job(&job, &cfg, 15);
        prop_assert!((back.cpu_power_w[0] as f64 - cpu_w).abs() < 0.1);
        prop_assert!((back.gpu_power_w[0] as f64 - gpu_w).abs() < 0.1);
    }
}
