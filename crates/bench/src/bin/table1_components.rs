//! Regenerates **Table I** of the paper ("Component overview of the
//! Frontier supercomputer") from the built-in configuration, and prints
//! the **Fig. 3** power-distribution topology (rack → shelves → chassis →
//! rectifiers → blades → SIVOCs → nodes).

use exadigit_bench::section;
use exadigit_raps::config::{FrontierSpec, SystemConfig};

fn main() {
    section("Table I — Component overview of the Frontier supercomputer");

    println!("  {:<24} {:>8}", "Component", "Quantity");
    for (name, qty) in [
        ("Number of CDUs", FrontierSpec::NUM_CDUS),
        ("Racks per CDU", FrontierSpec::RACKS_PER_CDU),
        ("Chassis per Rack", FrontierSpec::CHASSIS_PER_RACK),
        ("Rectifiers per Rack", FrontierSpec::RECTIFIERS_PER_RACK),
        ("Blades per Rack", FrontierSpec::BLADES_PER_RACK),
        ("Nodes per Rack", FrontierSpec::NODES_PER_RACK),
        ("SIVOCs per Rack", FrontierSpec::SIVOCS_PER_RACK),
        ("Switches per Rack", FrontierSpec::SWITCHES_PER_RACK),
        ("Nodes Total", FrontierSpec::TOTAL_NODES),
    ] {
        println!("  {name:<24} {qty:>8}");
    }

    println!("\n  {:<24} {:>10}", "Component", "Power");
    for (name, w) in [
        ("GPU (Idle)", FrontierSpec::GPU_IDLE_W),
        ("GPU (Max)", FrontierSpec::GPU_MAX_W),
        ("CPU (Idle)", FrontierSpec::CPU_IDLE_W),
        ("CPU (Max)", FrontierSpec::CPU_MAX_W),
        ("RAM (Avg)", FrontierSpec::RAM_AVG_W),
        ("NVMe (Avg)", FrontierSpec::NVME_EACH_W),
        ("NIC (Avg)", FrontierSpec::NIC_EACH_W),
        ("Switch (Avg)", FrontierSpec::SWITCH_AVG_W),
        ("CDU (Avg)", FrontierSpec::CDU_AVG_W),
    ] {
        println!("  {name:<24} {w:>8.0} W");
    }

    section("Fig. 3 — Rack-level power distribution and voltage conversion");
    println!("  3-phase AC feed");
    println!("   └─ 1 rack = 4 shelves");
    println!("       └─ each shelf = 2 chassis ({} chassis/rack)", FrontierSpec::CHASSIS_PER_RACK);
    println!(
        "           └─ each chassis = 4 active rectifiers ({} rectifiers/rack, shared 380 V DC bus)",
        FrontierSpec::RECTIFIERS_PER_RACK
    );
    println!(
        "               └─ each chassis feeds 8 compute blades ({} blades/rack)",
        FrontierSpec::BLADES_PER_RACK
    );
    println!(
        "                   └─ each blade = 2 SIVOC 380→48 V converters ({} SIVOCs/rack)",
        FrontierSpec::SIVOCS_PER_RACK
    );
    println!(
        "                       └─ each blade = 2 nodes ({} nodes/rack)",
        FrontierSpec::NODES_PER_RACK
    );

    // Internal consistency of the derived quantities.
    let cfg = SystemConfig::frontier();
    println!("\n  derived: {} racks total ({} nodes / {} per rack)",
        cfg.total_racks(), cfg.total_nodes(), cfg.rack.nodes_per_rack);
    assert_eq!(cfg.total_racks(), 74);
    assert_eq!(FrontierSpec::CHASSIS_PER_RACK * 4, FrontierSpec::RECTIFIERS_PER_RACK);
    assert_eq!(FrontierSpec::CHASSIS_PER_RACK * 8, FrontierSpec::BLADES_PER_RACK);
    assert_eq!(FrontierSpec::BLADES_PER_RACK * 2, FrontierSpec::NODES_PER_RACK);
    println!("  consistency checks passed ✓");
}
