//! Reproducibility: the twin is a scientific instrument, so identical
//! seeds and configurations must produce bit-identical results — the
//! property every what-if comparison in the paper silently relies on
//! (the same 183 days replayed under different variants).

use exadigit_core::{DigitalTwin, TwinConfig};
use exadigit_raps::stats::RunReport;
use exadigit_raps::workload::{benchmark_day, WorkloadGenerator, WorkloadParams};

fn run_twin(seed: u64, with_cooling: bool, horizon: u64) -> (RunReport, Vec<f64>, Option<f64>) {
    let cfg = if with_cooling {
        TwinConfig::frontier()
    } else {
        TwinConfig::frontier_power_only()
    };
    let mut twin = DigitalTwin::new(cfg).unwrap();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), seed);
    twin.submit(generator.generate_day(0));
    twin.run(horizon).unwrap();
    let pue = twin.cooling_output("pue");
    (twin.report(), twin.outputs().system_power_w.to_vec(), pue)
}

#[test]
fn power_only_twin_bit_identical() {
    let (r1, p1, _) = run_twin(77, false, 3600);
    let (r2, p2, _) = run_twin(77, false, 3600);
    assert_eq!(r1, r2);
    assert_eq!(p1, p2);
}

#[test]
fn coupled_twin_bit_identical() {
    let (r1, p1, pue1) = run_twin(77, true, 1800);
    let (r2, p2, pue2) = run_twin(77, true, 1800);
    assert_eq!(r1, r2);
    assert_eq!(p1, p2);
    assert_eq!(pue1, pue2);
}

/// Bit-identical replay: two coupled `DigitalTwin` runs with the same seed
/// must agree on every recorded sample at the `f64::to_bits` level — not
/// merely within tolerance. `PartialEq` on floats would also accept
/// `-0.0 == 0.0`; replay hashing and regression baselines need stricter.
#[test]
fn coupled_twin_replay_bit_identical_to_the_bit() {
    let (r1, p1, pue1) = run_twin(4242, true, 1800);
    let (r2, p2, pue2) = run_twin(4242, true, 1800);
    assert_eq!(r1, r2);
    assert_eq!(p1.len(), p2.len());
    for (i, (a, b)) in p1.iter().zip(&p2).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "sample {i}: {a} vs {b}");
    }
    match (pue1, pue2) {
        (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
        (a, b) => assert_eq!(a, b),
    }
}

/// The RNG streams underneath the twin are themselves reproducible:
/// same seed → identical raw streams, identical split streams, and
/// bit-identical floating-point deviates from every distribution.
#[test]
fn rng_streams_bit_identical() {
    use exadigit_sim::Rng;
    let mut a = Rng::new(0xDEAD_BEEF);
    let mut b = Rng::new(0xDEAD_BEEF);
    for _ in 0..256 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // Split streams are a pure function of (parent seed, stream id).
    for stream in [0u64, 1, 7, 1 << 40] {
        let mut sa = Rng::new(99).split(stream);
        let mut sb = Rng::new(99).split(stream);
        for _ in 0..64 {
            assert_eq!(sa.next_u64(), sb.next_u64());
        }
    }
    // Distribution deviates are bit-identical, not just approximately so.
    let mut da = Rng::new(7).split(3);
    let mut db = Rng::new(7).split(3);
    for _ in 0..64 {
        assert_eq!(da.uniform().to_bits(), db.uniform().to_bits());
        assert_eq!(da.exponential(0.01).to_bits(), db.exponential(0.01).to_bits());
        assert_eq!(da.standard_normal().to_bits(), db.standard_normal().to_bits());
        assert_eq!(
            da.lognormal_from_moments(240.0, 300.0).to_bits(),
            db.lognormal_from_moments(240.0, 300.0).to_bits()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let (r1, _, _) = run_twin(1, false, 3600);
    let (r2, _, _) = run_twin(2, false, 3600);
    assert_ne!(r1, r2, "distinct seeds must generate distinct workloads");
}

#[test]
fn workload_generation_is_stable_across_calls() {
    let jobs_a = benchmark_day(42);
    let jobs_b = benchmark_day(42);
    assert_eq!(jobs_a.len(), jobs_b.len());
    for (a, b) in jobs_a.iter().zip(&jobs_b) {
        assert_eq!(a, b);
    }
}

#[test]
fn synthetic_twin_telemetry_deterministic() {
    use exadigit_telemetry::SyntheticTwin;
    let twin = SyntheticTwin::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 9);
    let jobs: Vec<_> =
        generator.generate_day(0).into_iter().filter(|j| j.submit_time_s < 600).collect();
    let a = twin.record_span(jobs.clone(), 900, 0);
    let b = twin.record_span(jobs, 900, 0);
    assert_eq!(a.measured_power_w.to_vec(), b.measured_power_w.to_vec());
    assert_eq!(a.cooling.pue.to_vec(), b.cooling.pue.to_vec());
    assert_eq!(a.wet_bulb.to_vec(), b.wet_bulb.to_vec());
}
