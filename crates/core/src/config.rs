//! Whole-twin configuration.
//!
//! §V of the paper: "the generalized version of RAPS inputs configuration
//! files describing the system architecture, the cooling system, the
//! scheduler, and the power system" — [`TwinConfig`] is that file: the
//! RAPS [`SystemConfig`], the AutoCSM [`PlantSpec`], the scheduling
//! policy and the power-delivery variant, all JSON-serialisable.

use exadigit_cooling::PlantSpec;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use serde::{Deserialize, Serialize};

/// Configuration of a complete digital twin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwinConfig {
    /// System architecture + power system (Table I schema).
    pub system: SystemConfig,
    /// Cooling-plant specification (AutoCSM schema, Fig. 5 for Frontier).
    pub plant: PlantSpec,
    /// Scheduling policy.
    pub policy: Policy,
    /// Power-delivery variant.
    pub delivery: PowerDelivery,
    /// Whether the cooling model is attached (the paper replays run
    /// "about nine minutes ... with cooling, or just three without").
    pub with_cooling: bool,
    /// Output recording cadence, seconds.
    pub record_every_s: u64,
}

impl TwinConfig {
    /// The Frontier twin of the paper.
    pub fn frontier() -> Self {
        TwinConfig {
            system: SystemConfig::frontier(),
            plant: PlantSpec::frontier(),
            policy: Policy::FirstFit,
            delivery: PowerDelivery::StandardAC,
            with_cooling: true,
            record_every_s: 15,
        }
    }

    /// Frontier without the cooling model (fast replays).
    pub fn frontier_power_only() -> Self {
        TwinConfig { with_cooling: false, ..TwinConfig::frontier() }
    }

    /// A Setonix-like multi-partition twin (§V).
    pub fn setonix_like() -> Self {
        TwinConfig {
            system: SystemConfig::setonix_like(),
            plant: PlantSpec::setonix_like(),
            policy: Policy::FirstFit,
            delivery: PowerDelivery::StandardAC,
            with_cooling: true,
            record_every_s: 15,
        }
    }

    /// A Marconi100-like twin (§V / PM100).
    pub fn marconi100_like() -> Self {
        TwinConfig {
            system: SystemConfig::marconi100_like(),
            plant: PlantSpec::marconi100_like(),
            policy: Policy::FirstFit,
            delivery: PowerDelivery::StandardAC,
            with_cooling: true,
            record_every_s: 15,
        }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Cross-validate the pieces: CDU counts must agree between the power
    /// system and the cooling plant.
    pub fn validate(&self) -> Result<(), String> {
        self.plant.validate()?;
        if self.with_cooling && self.system.cooling.num_cdus != self.plant.num_cdus {
            return Err(format!(
                "system has {} CDUs but the plant models {}",
                self.system.cooling.num_cdus, self.plant.num_cdus
            ));
        }
        if self.record_every_s == 0 {
            return Err("record_every_s must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TwinConfig::frontier().validate().unwrap();
        TwinConfig::frontier_power_only().validate().unwrap();
        TwinConfig::setonix_like().validate().unwrap();
        TwinConfig::marconi100_like().validate().unwrap();
    }

    #[test]
    fn json_round_trip() {
        let cfg = TwinConfig::frontier();
        let back = TwinConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn cdu_mismatch_detected() {
        let mut cfg = TwinConfig::frontier();
        cfg.system.cooling.num_cdus = 7;
        assert!(cfg.validate().is_err());
        // Without cooling the mismatch is irrelevant.
        cfg.with_cooling = false;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_cadence_rejected() {
        let mut cfg = TwinConfig::frontier();
        cfg.record_every_s = 0;
        assert!(cfg.validate().is_err());
    }
}
