//! Service-layer throughput: what snapshot/fork buys a what-if query.
//!
//! The twin-as-a-service acceptance criterion (`docs/SERVICE.md`): a
//! what-if branched from a mid-day snapshot must be **≥ 5× faster** than
//! answering the same question by cold-start replay, because the fork
//! costs O(horizon) while the replay costs O(elapsed + horizon). The
//! ratio grows with how far into the day the snapshot sits — this bench
//! pins it at noon of a shared-load Frontier day with a one-hour
//! horizon.
//!
//! Also measured: the snapshot itself (a state clone — the constant the
//! service pays per checkpoint), a cache hit (the floor for repeated
//! questions), a 16-draw UQ ensemble answered entirely from one
//! snapshot, and the `fork_scaling` group — fork/snapshot cost at 1 h,
//! 12 h, and 7 d of recorded history, which the copy-on-write series
//! representation must keep flat. Baseline:
//! `BENCH_service_throughput.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use exadigit_core::config::TwinConfig;
use exadigit_core::twin::DigitalTwin;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_service::{
    run_whatif, scenario_fingerprint, QueryCache, SnapshotStore, WhatIfSpec,
};
use std::hint::black_box;
use std::time::Duration;

/// Fork point: noon of the simulated day.
const NOON_S: u64 = 43_200;
/// Query horizon past the fork point.
const HORIZON_S: u64 = 3_600;

fn day_twin() -> DigitalTwin {
    let mut twin =
        DigitalTwin::new(TwinConfig::frontier_power_only()).expect("config valid");
    let mut gen = WorkloadGenerator::new(WorkloadParams::default(), 77);
    twin.submit(gen.generate_day(0));
    twin
}

/// A loaded twin advanced through `seconds` of recorded history (one
/// generated day of workload per elapsed day, so the queues stay busy
/// however deep the history goes).
fn twin_with_history(seconds: u64) -> DigitalTwin {
    let mut twin =
        DigitalTwin::new(TwinConfig::frontier_power_only()).expect("config valid");
    let mut gen = WorkloadGenerator::new(WorkloadParams::default(), 77);
    for day in 0..=seconds / 86_400 {
        twin.submit(gen.generate_day(day));
    }
    twin.run(seconds).expect("advance through history");
    twin
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.measurement_time(Duration::from_secs(10)).sample_size(10);

    // Shared setup: the live twin at noon, frozen into a snapshot.
    let mut live = day_twin();
    live.run(NOON_S).expect("advance to noon");
    let mut store = SnapshotStore::new(4, 42);
    let snapshot = store.take(&live, "noon".into()).expect("snapshot");
    let spec = WhatIfSpec { horizon_s: HORIZON_S, ..WhatIfSpec::default() };

    // The headline pair: fork-from-snapshot vs cold-start replay to the
    // same absolute horizon (what a batch-only twin pays per question).
    group.bench_function("fork_whatif_1h", |b| {
        b.iter(|| black_box(run_whatif(&snapshot, &spec, Some(1)).expect("query")))
    });
    group.bench_function("cold_start_whatif_1h", |b| {
        b.iter_batched(
            day_twin,
            |mut twin| {
                twin.run(NOON_S + HORIZON_S).expect("cold replay");
                black_box(twin.report().total_energy_mwh)
            },
            BatchSize::LargeInput,
        )
    });

    // The checkpoint constant: freezing the noon state.
    group.bench_function("snapshot_take", |b| {
        b.iter_batched(
            || SnapshotStore::new(1024, 42),
            |mut store| black_box(store.take(&live, "noon".into()).expect("snapshot").id),
            BatchSize::SmallInput,
        )
    });

    // The repeat-question floor: fingerprint + hash lookup.
    let mut cache = QueryCache::new(64);
    let fp = scenario_fingerprint(&spec);
    cache.insert(snapshot.id, fp, run_whatif(&snapshot, &spec, Some(1)).expect("warm"));
    group.bench_function("cached_answer", |b| {
        b.iter(|| {
            black_box(
                cache
                    .get(snapshot.id, scenario_fingerprint(&spec))
                    .expect("warm cache")
                    .avg_power_mw,
            )
        })
    });

    // Ensemble from one snapshot: 16 UQ draws, each a fork.
    let uq = WhatIfSpec { horizon_s: HORIZON_S, draws: 16, ..WhatIfSpec::default() };
    group.bench_function("uq16_from_snapshot", |b| {
        b.iter(|| black_box(run_whatif(&snapshot, &uq, Some(1)).expect("uq").power_std_mw))
    });

    // Per-draw *overhead* isolated: a zero-second horizon leaves only
    // what each draw pays before simulating — the shared-prefix fork,
    // the parameter perturbation, and the power-model rebuild. This is
    // the number the copy-on-write fork is meant to crush (each draw
    // used to deep-clone the full recorded history here).
    let uq0 = WhatIfSpec { horizon_s: 0, draws: 16, ..WhatIfSpec::default() };
    group.bench_function("uq16_prefix_only", |b| {
        b.iter(|| black_box(run_whatif(&snapshot, &uq0, Some(1)).expect("uq0").draws))
    });

    group.finish();
}

/// Fork-cost scaling in recorded-history depth: the copy-on-write
/// acceptance criterion (`docs/SERVICE.md`) is that `fork` and
/// `snapshot_take` stay **flat** as history grows — a 7-day twin must
/// fork within ~2× of a 1-hour twin, because sealed chunks transfer by
/// refcount and only the mutable scratch (queues, calendar, tails) is
/// copied. Before CoW both costs were O(recorded samples).
///
/// `EXADIGIT_FORK_MAX_HISTORY_S` caps the deepest history point so CI
/// can smoke-run the scenario in seconds (the scaling claim itself is
/// pinned on the full 1h/12h/7d sweep recorded in
/// `BENCH_service_throughput.json`).
fn bench_fork_scaling(c: &mut Criterion) {
    let cap: u64 = std::env::var("EXADIGIT_FORK_MAX_HISTORY_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX);
    let mut group = c.benchmark_group("fork_scaling");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    for (label, seconds) in [("1h", 3_600), ("12h", 43_200), ("7d", 604_800)] {
        if seconds > cap {
            continue;
        }
        let twin = twin_with_history(seconds);
        group.bench_function(format!("fork_{label}"), |b| {
            b.iter(|| black_box(twin.fork().expect("fork").now()))
        });
        group.bench_function(format!("snapshot_take_{label}"), |b| {
            b.iter_batched(
                || SnapshotStore::new(1024, 42),
                |mut store| black_box(store.take(&twin, label.into()).expect("snapshot").id),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput, bench_fork_scaling);
criterion_main!(benches);
