//! Lock-light observability for the twin service: a metrics registry,
//! request-lifecycle tracing, and Prometheus text exposition.
//!
//! The paper's twin is an *operational* tool — ORNL runs ExaDigiT
//! against live Frontier telemetry — so the serving tier needs to be
//! watchable while it runs, not just benchmarkable offline. This crate
//! is the shared core the rest of the workspace instruments itself
//! with:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — `Arc`-shared atomics;
//!   the hot path (`inc`, `set`, `observe`) takes no lock and
//!   allocates nothing. Histograms are fixed-bucket with quantile
//!   estimation from the bucket counts ([`HistogramSnapshot::quantile`]),
//!   so p50/p99 cost nothing per sample.
//! - [`Registry`] — names instruments, deduplicates registration by
//!   `(name, labels)`, snapshots every value ([`Registry::samples`]),
//!   and renders the Prometheus text exposition format
//!   ([`Registry::render_prometheus`]).
//! - [`TraceRing`] / [`SlowQueryLog`] — a bounded ring of structured
//!   request-lifecycle events (admitted → executing → written with
//!   per-stage timings) and a threshold-gated log of the slowest
//!   requests.
//! - [`HttpExporter`] — a one-thread plain-HTTP sidecar serving
//!   `GET /metrics`, so a Prometheus scraper (or `curl`) can watch a
//!   live server without speaking the NDJSON protocol.
//!
//! **Simulation inertness is a hard contract**: instruments only ever
//! *absorb* values — nothing in this crate feeds back into simulation
//! arithmetic, so a twin runs bit-identically with observability
//! enabled, disabled, or contended (pinned by the workspace's
//! `observability` bit-identity tests).
//!
//! The crate is std-only and dependency-free, so every layer (raps
//! kernel included) can depend on it without dragging serde or the
//! service stack into leaf crates.

#![warn(missing_docs)]

mod http;
mod metrics;
mod trace;

pub use http::HttpExporter;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, Sample,
    LATENCY_BUCKETS_S,
};
pub use trace::{SlowQuery, SlowQueryLog, Stage, TraceEvent, TraceRing};
