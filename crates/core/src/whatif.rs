//! What-if studies — §IV-3 of the paper and the §III-A use-case list.
//!
//! "Now we can begin to envision ways to improve overall efficiency
//! through virtual modifications to Frontier's DT": the paper tests smart
//! load-sharing rectifiers (+0.1 % efficiency ≈ $120k/yr) and direct
//! 380 V DC distribution (93.3 % → 97.3 %, ≈ $542k/yr, −8.2 % CO₂). This
//! module reproduces those two studies plus three §III-A use cases:
//! virtually extending the cooling plant for a future secondary system,
//! CDU blockage injection/detection (water quality), and thermal-throttle
//! prediction.
//!
//! Plant-condition sweeps are fidelity-selectable (see
//! `docs/FIDELITY.md`): [`whatif_grid`] evaluates the same
//! (load × wet-bulb) grid either by settling the L4 plant at every point
//! or by serving each point from a fitted L3 [`Surrogate`] — the paper's
//! motivation for surrogates ("run in real-time") made concrete, since
//! the L3 grid costs microseconds where the L4 grid costs seconds.

use crate::surrogate::Surrogate;
use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::stats::RunReport;
use exadigit_sim::ensemble::EnsembleRunner;
use exadigit_sim::fmi::CoSimModel;
use exadigit_thermo::coldplate::ColdPlate;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Power-delivery study (smart rectifiers, 380 V DC)
// ---------------------------------------------------------------------

/// Outcome of one power-delivery variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryOutcome {
    /// The variant simulated.
    pub delivery: PowerDelivery,
    /// Its run report.
    pub report: RunReport,
}

/// Results of replaying one workload under all three delivery variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDeliveryStudy {
    /// Outcomes in `[StandardAC, SmartRectifiers, Direct380Vdc]` order.
    pub outcomes: Vec<DeliveryOutcome>,
}

/// Replay `jobs` for `horizon_s` under a single delivery variant — the
/// scenario unit batched by [`PowerDeliveryStudy::run`] and
/// [`crate::ensemble`] (power-only: conversion losses do not feed back
/// into cooling).
pub fn run_delivery_variant(
    system: &SystemConfig,
    jobs: &[Job],
    horizon_s: u64,
    policy: Policy,
    delivery: PowerDelivery,
) -> DeliveryOutcome {
    let mut sim = RapsSimulation::new(system.clone(), delivery, policy, 60);
    sim.submit_jobs(jobs.to_vec());
    sim.run_until(horizon_s).expect("power-only run cannot fail");
    DeliveryOutcome { delivery, report: sim.report() }
}

impl PowerDeliveryStudy {
    /// Replay `jobs` for `horizon_s` under each variant, batched across
    /// the thread-pool executor at the process-default width.
    pub fn run(system: &SystemConfig, jobs: &[Job], horizon_s: u64, policy: Policy) -> Self {
        Self::run_on(&EnsembleRunner::new(0), system, jobs, horizon_s, policy)
    }

    /// [`PowerDeliveryStudy::run`] on an explicit [`EnsembleRunner`]
    /// (pool-width control; the study is deterministic, so the runner's
    /// seed is irrelevant).
    pub fn run_on(
        runner: &EnsembleRunner,
        system: &SystemConfig,
        jobs: &[Job],
        horizon_s: u64,
        policy: Policy,
    ) -> Self {
        let variants = vec![
            PowerDelivery::StandardAC,
            PowerDelivery::SmartRectifiers,
            PowerDelivery::Direct380Vdc,
        ];
        let outcomes = runner.map(variants, |_ctx, delivery| {
            run_delivery_variant(system, jobs, horizon_s, policy, delivery)
        });
        PowerDeliveryStudy { outcomes }
    }

    /// The baseline (standard AC) outcome.
    pub fn baseline(&self) -> &DeliveryOutcome {
        &self.outcomes[0]
    }

    /// Outcome for a variant.
    pub fn outcome(&self, delivery: PowerDelivery) -> &DeliveryOutcome {
        self.outcomes.iter().find(|o| o.delivery == delivery).expect("all variants present")
    }

    /// Yearly energy-cost savings of a variant vs the baseline, USD —
    /// the Δloss energy valued at the configured tariff.
    pub fn yearly_savings_usd(&self, delivery: PowerDelivery, system: &SystemConfig) -> f64 {
        let base = &self.baseline().report;
        let var = &self.outcome(delivery).report;
        let delta_mw = base.avg_loss_mw - var.avg_loss_mw;
        let yearly_mwh = delta_mw * 8_766.0;
        RunReport::cost_for(&system.costs, yearly_mwh)
    }

    /// Relative CO₂ change of a variant vs the baseline, percent
    /// (negative = reduction). Per eq. (6) emissions scale with consumed
    /// energy *and* 1/η.
    pub fn carbon_delta_percent(&self, delivery: PowerDelivery) -> f64 {
        let base = &self.baseline().report;
        let var = &self.outcome(delivery).report;
        100.0 * (var.co2_tons - base.co2_tons) / base.co2_tons
    }

    /// Efficiency gain of a variant vs the baseline, percentage points.
    pub fn efficiency_gain_points(&self, delivery: PowerDelivery) -> f64 {
        100.0 * (self.outcome(delivery).report.efficiency - self.baseline().report.efficiency)
    }
}

// ---------------------------------------------------------------------
// Cooling-extension study (virtual prototyping)
// ---------------------------------------------------------------------

/// Plant condition summary for the extension study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantCondition {
    /// HTW supply temperature at the hall, °C.
    pub htws_temp_c: f64,
    /// PUE.
    pub pue: f64,
    /// Tower cells staged.
    pub cells_staged: f64,
    /// Auxiliary cooling power (HTWP+CTWP+fans+CDU pumps), W.
    pub cooling_power_w: f64,
}

/// Virtual prototyping: impact of attaching a future secondary system's
/// heat load onto the existing CEP (§III-A use case).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingExtensionStudy {
    /// Current-system condition.
    pub baseline: PlantCondition,
    /// Condition with the extension load attached.
    pub extended: PlantCondition,
    /// Extension load, W.
    pub extension_w: f64,
}

impl CoolingExtensionStudy {
    /// Settle the plant at `base_load_fraction` of design heat, then with
    /// `extension_mw` of additional load spread across the CDUs, and
    /// compare the steady conditions at the given wet-bulb.
    pub fn run(
        spec: &PlantSpec,
        base_load_fraction: f64,
        extension_mw: f64,
        wet_bulb_c: f64,
    ) -> Result<Self, String> {
        let settle = |extra_w: f64| -> Result<PlantCondition, String> {
            let mut model = CoolingModel::new(spec.clone())?;
            model.setup(0.0);
            let heat =
                spec.heat_per_cdu_w() * base_load_fraction + extra_w / spec.num_cdus as f64;
            let it_power = heat * spec.num_cdus as f64 / 0.945;
            for i in 0..spec.num_cdus {
                model
                    .set_real(exadigit_sim::fmi::VarRef(i as u32), heat)
                    .map_err(|e| e.to_string())?;
            }
            let wb_vr = model.var_by_name("wet_bulb").expect("registry").vr;
            model.set_real(wb_vr, wet_bulb_c).map_err(|e| e.to_string())?;
            let it_vr = model.var_by_name("it_power").expect("registry").vr;
            model.set_real(it_vr, it_power).map_err(|e| e.to_string())?;
            for k in 0..600 {
                model.do_step(k as f64 * 15.0, 15.0).map_err(|e| e.to_string())?;
            }
            Ok(PlantCondition {
                htws_temp_c: model.output_by_name("facility.htw_supply_temp").unwrap(),
                pue: model.output_by_name("pue").unwrap(),
                cells_staged: model.output_by_name("ct.num_cells_staged").unwrap(),
                cooling_power_w: model.output_by_name("cooling_power").unwrap(),
            })
        };
        Ok(CoolingExtensionStudy {
            baseline: settle(0.0)?,
            extended: settle(extension_mw * 1e6)?,
            extension_w: extension_mw * 1e6,
        })
    }
}

// ---------------------------------------------------------------------
// CDU blockage injection & detection (water quality)
// ---------------------------------------------------------------------

/// Result of a blockage-detection pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockageReport {
    /// Per-CDU secondary flows observed, m³/s.
    pub flows_m3s: Vec<f64>,
    /// CDUs flagged as blocked (0-based).
    pub flagged: Vec<usize>,
    /// Detection threshold used (fraction of the median flow).
    pub threshold: f64,
}

/// Flag CDUs whose secondary flow falls below `threshold` × median —
/// the detection predicate for "can these types of blockages be
/// detected?" (§III-A).
pub fn detect_blockages(flows: &[f64], threshold: f64) -> BlockageReport {
    let mut sorted = flows.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("flows are finite"));
    let median = sorted[sorted.len() / 2];
    let flagged = flows
        .iter()
        .enumerate()
        .filter(|(_, &q)| q < threshold * median)
        .map(|(i, _)| i)
        .collect();
    BlockageReport { flows_m3s: flows.to_vec(), flagged, threshold }
}

/// Inject blockages into the given CDUs of a settled plant and verify the
/// detector finds exactly them. Returns the detection report.
pub fn blockage_experiment(
    spec: &PlantSpec,
    blocked_cdus: &[usize],
    blockage_factor: f64,
    load_fraction: f64,
) -> Result<BlockageReport, String> {
    let mut model = CoolingModel::new(spec.clone())?;
    model.setup(0.0);
    let heat = spec.heat_per_cdu_w() * load_fraction;
    for i in 0..spec.num_cdus {
        model
            .set_real(exadigit_sim::fmi::VarRef(i as u32), heat)
            .map_err(|e| e.to_string())?;
    }
    for &cdu in blocked_cdus {
        let vr = model
            .var_by_name(&format!("cdu_blockage[{}]", cdu + 1))
            .ok_or("unknown CDU")?
            .vr;
        model.set_real(vr, blockage_factor).map_err(|e| e.to_string())?;
    }
    for k in 0..200 {
        model.do_step(k as f64 * 15.0, 15.0).map_err(|e| e.to_string())?;
    }
    let flows: Vec<f64> = (1..=spec.num_cdus)
        .map(|i| model.output_by_name(&format!("cdu[{i}].secondary_flow")).unwrap())
        .collect();
    Ok(detect_blockages(&flows, 0.85))
}

// ---------------------------------------------------------------------
// Setpoint optimization (L5 precursor)
// ---------------------------------------------------------------------

/// One evaluated setpoint candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetpointCandidate {
    /// Tower basin temperature setpoint, °C.
    pub basin_setpoint_c: f64,
    /// Resulting PUE.
    pub pue: f64,
    /// Resulting cooling auxiliary power, W.
    pub cooling_power_w: f64,
    /// HTW supply temperature reaching the hall, °C.
    pub htws_temp_c: f64,
}

/// Result of a basin-setpoint sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetpointSweep {
    /// All candidates in sweep order.
    pub candidates: Vec<SetpointCandidate>,
    /// Index of the PUE-minimising candidate.
    pub best: usize,
}

/// Build `model_spec`, apply `heat_per_cdu_w` to every CDU at the given
/// wet-bulb, and step the plant to steady state (400 × 15 s) — the
/// settling protocol shared by [`settle_setpoint`] and
/// [`settle_weather_point`].
fn settle_plant(
    model_spec: PlantSpec,
    heat_per_cdu_w: f64,
    wet_bulb_c: f64,
) -> Result<CoolingModel, String> {
    let num_cdus = model_spec.num_cdus;
    let mut model = CoolingModel::new(model_spec)?;
    model.setup(0.0);
    for i in 0..num_cdus {
        model
            .set_real(exadigit_sim::fmi::VarRef(i as u32), heat_per_cdu_w)
            .map_err(|e| e.to_string())?;
    }
    let wb_vr = model.var_by_name("wet_bulb").expect("registry").vr;
    model.set_real(wb_vr, wet_bulb_c).map_err(|e| e.to_string())?;
    let it_vr = model.var_by_name("it_power").expect("registry").vr;
    model
        .set_real(it_vr, heat_per_cdu_w * num_cdus as f64 / 0.945)
        .map_err(|e| e.to_string())?;
    for k in 0..400 {
        model.do_step(k as f64 * 15.0, 15.0).map_err(|e| e.to_string())?;
    }
    Ok(model)
}

/// Settle the plant at one basin setpoint and read off the optimisation
/// objectives — the scenario unit batched by [`setpoint_sweep`] and
/// [`crate::ensemble`].
pub fn settle_setpoint(
    spec: &PlantSpec,
    setpoint_c: f64,
    load_fraction: f64,
    wet_bulb_c: f64,
) -> Result<SetpointCandidate, String> {
    let mut candidate_spec = spec.clone();
    candidate_spec.towers.basin_setpoint_c = setpoint_c;
    let model =
        settle_plant(candidate_spec, spec.heat_per_cdu_w() * load_fraction, wet_bulb_c)?;
    Ok(SetpointCandidate {
        basin_setpoint_c: setpoint_c,
        pue: model.output_by_name("pue").expect("output"),
        cooling_power_w: model.output_by_name("cooling_power").expect("output"),
        htws_temp_c: model.output_by_name("facility.htw_supply_temp").expect("output"),
    })
}

/// Sweep the tower basin setpoint and pick the PUE optimum — the
/// grid-search precursor of the paper's L5 use case ("automated setpoint
/// control for improved cooling efficiency"). Candidates are batched
/// across the thread-pool executor; on failure the lowest-index error is
/// returned, deterministically.
pub fn setpoint_sweep(
    spec: &PlantSpec,
    setpoints_c: &[f64],
    load_fraction: f64,
    wet_bulb_c: f64,
) -> Result<SetpointSweep, String> {
    let candidates: Vec<SetpointCandidate> = EnsembleRunner::new(0)
        .try_map(setpoints_c.to_vec(), |_ctx, sp| {
            settle_setpoint(spec, sp, load_fraction, wet_bulb_c)
        })?;
    let best = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.pue.partial_cmp(&b.1.pue).expect("finite PUE"))
        .map(|(i, _)| i)
        .ok_or("empty sweep")?;
    Ok(SetpointSweep { candidates, best })
}

// ---------------------------------------------------------------------
// Weather-correlation study
// ---------------------------------------------------------------------

/// One point of the weather sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherPoint {
    /// Wet-bulb temperature, °C.
    pub wet_bulb_c: f64,
    /// CDU secondary supply temperature (what the GPUs see), °C.
    pub secondary_supply_c: f64,
    /// PUE.
    pub pue: f64,
    /// Tower fan + pump auxiliary power, W.
    pub cooling_power_w: f64,
}

/// Settle the plant at one wet-bulb temperature — the scenario unit
/// batched by [`weather_sweep`].
pub fn settle_weather_point(
    spec: &PlantSpec,
    wet_bulb_c: f64,
    load_fraction: f64,
) -> Result<WeatherPoint, String> {
    let model = settle_plant(spec.clone(), spec.heat_per_cdu_w() * load_fraction, wet_bulb_c)?;
    Ok(WeatherPoint {
        wet_bulb_c,
        secondary_supply_c: model
            .output_by_name("cdu[1].secondary_supply_temp")
            .expect("output"),
        pue: model.output_by_name("pue").expect("output"),
        cooling_power_w: model.output_by_name("cooling_power").expect("output"),
    })
}

/// Sweep the wet-bulb temperature at constant load — "understanding how
/// weather correlates to GPU temperatures on the system" (§III-A).
/// Points are batched across the thread-pool executor.
pub fn weather_sweep(
    spec: &PlantSpec,
    wet_bulbs_c: &[f64],
    load_fraction: f64,
) -> Result<Vec<WeatherPoint>, String> {
    EnsembleRunner::new(0)
        .try_map(wet_bulbs_c.to_vec(), |_ctx, wb| settle_weather_point(spec, wb, load_fraction))
}

// ---------------------------------------------------------------------
// Fidelity-selectable what-if grid (L3 surrogate vs L4 plant)
// ---------------------------------------------------------------------

/// The model fidelity a plant-condition sweep runs at.
///
/// Both arms answer the same question — steady PUE and cooling power at
/// a (load fraction, wet-bulb) operating point — through different
/// machinery, so a sweep can trade accuracy for wall-clock per point.
#[derive(Debug, Clone, PartialEq)]
pub enum Fidelity {
    /// L4: settle the comprehensive transient plant at every point.
    Plant,
    /// L3: serve every point from a fitted surrogate (microseconds per
    /// point; extrapolation outside the training envelope is flagged,
    /// not fatal).
    Surrogate(Surrogate),
}

impl Fidelity {
    /// Short label for tables and bench IDs (`"L3"` / `"L4"`).
    pub fn label(&self) -> &'static str {
        match self {
            Fidelity::Plant => "L4",
            Fidelity::Surrogate(_) => "L3",
        }
    }
}

/// One evaluated point of a fidelity-selectable what-if grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridOutcome {
    /// Load fraction of plant design heat.
    pub load_fraction: f64,
    /// Wet-bulb temperature, °C.
    pub wet_bulb_c: f64,
    /// Steady PUE at the operating point.
    pub pue: f64,
    /// Steady cooling auxiliary power, W.
    pub cooling_power_w: f64,
    /// True when an L3 backend answered from outside its training
    /// envelope (always false at L4).
    pub extrapolated: bool,
}

/// A completed what-if grid with its extrapolation tally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfGrid {
    /// Outcomes in (load-major, wet-bulb-minor) sweep order.
    pub points: Vec<GridOutcome>,
    /// How many points were answered by extrapolation — the counted
    /// warning the paper's caveat about interpolative L3 models demands.
    pub extrapolations: usize,
}

/// Evaluate one grid point at the chosen fidelity — the scenario unit
/// batched by [`whatif_grid`] and [`crate::ensemble`]'s `GridPoint`.
pub fn evaluate_grid_point(
    spec: &PlantSpec,
    fidelity: &Fidelity,
    load_fraction: f64,
    wet_bulb_c: f64,
) -> Result<GridOutcome, String> {
    match fidelity {
        Fidelity::Plant => {
            let model =
                settle_plant(spec.clone(), spec.heat_per_cdu_w() * load_fraction, wet_bulb_c)?;
            Ok(GridOutcome {
                load_fraction,
                wet_bulb_c,
                pue: model.output_by_name("pue").expect("output"),
                cooling_power_w: model.output_by_name("cooling_power").expect("output"),
                extrapolated: false,
            })
        }
        Fidelity::Surrogate(sur) => Ok(GridOutcome {
            load_fraction,
            wet_bulb_c,
            pue: sur.predict_pue(load_fraction, wet_bulb_c),
            cooling_power_w: sur.predict_cooling_power(load_fraction, wet_bulb_c),
            extrapolated: !sur.in_domain(load_fraction, wet_bulb_c),
        }),
    }
}

/// Evaluate a (load × wet-bulb) grid at the chosen fidelity, batched
/// across the thread-pool executor at the process-default width.
pub fn whatif_grid(
    spec: &PlantSpec,
    fidelity: &Fidelity,
    loads: &[f64],
    wet_bulbs: &[f64],
) -> Result<WhatIfGrid, String> {
    whatif_grid_on(&EnsembleRunner::new(0), spec, fidelity, loads, wet_bulbs)
}

/// [`whatif_grid`] on an explicit [`EnsembleRunner`] (pool-width
/// control; grid evaluation is deterministic, so the runner's seed is
/// irrelevant).
pub fn whatif_grid_on(
    runner: &EnsembleRunner,
    spec: &PlantSpec,
    fidelity: &Fidelity,
    loads: &[f64],
    wet_bulbs: &[f64],
) -> Result<WhatIfGrid, String> {
    let mut cells = Vec::with_capacity(loads.len() * wet_bulbs.len());
    for &l in loads {
        for &w in wet_bulbs {
            cells.push((l, w));
        }
    }
    let points = runner
        .try_map(cells, |_ctx, (l, w)| evaluate_grid_point(spec, fidelity, l, w))?;
    let extrapolations = points.iter().filter(|p| p.extrapolated).count();
    Ok(WhatIfGrid { points, extrapolations })
}

// ---------------------------------------------------------------------
// Thermal-throttle scan
// ---------------------------------------------------------------------

/// One cell of the throttle-risk scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleCell {
    /// GPU power, W.
    pub gpu_power_w: f64,
    /// Coolant supply temperature, °C.
    pub coolant_temp_c: f64,
    /// Fraction of design coolant flow reaching the cold plate.
    pub flow_fraction: f64,
    /// Predicted junction temperature, °C.
    pub junction_c: f64,
    /// Whether the junction exceeds the throttle limit.
    pub throttles: bool,
}

/// Scan GPU power × flow-fraction combinations at a given coolant supply
/// temperature — "early detection of thermal throttling" (§III-A).
pub fn thermal_throttle_scan(
    coolant_temp_c: f64,
    throttle_limit_c: f64,
    power_points: &[f64],
    flow_fractions: &[f64],
) -> Vec<ThrottleCell> {
    let plate = ColdPlate::gpu();
    let mut out = Vec::with_capacity(power_points.len() * flow_fractions.len());
    for &p in power_points {
        for &f in flow_fractions {
            let q = plate.q_design * f;
            let tj = plate.junction_temperature(p, coolant_temp_c, q);
            out.push(ThrottleCell {
                gpu_power_w: p,
                coolant_temp_c,
                flow_fraction: f,
                junction_c: tj,
                throttles: tj > throttle_limit_c,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};

    fn small_system() -> SystemConfig {
        let mut cfg = SystemConfig::frontier();
        cfg.partitions[0].nodes = 1024;
        cfg.cooling.num_cdus = 3;
        cfg.cooling.racks_per_cdu = 3;
        cfg
    }

    #[test]
    fn delivery_study_orders_losses_correctly() {
        let cfg = small_system();
        let mut generator = WorkloadGenerator::new(
            WorkloadParams { machine_nodes: 1024, ..Default::default() },
            99,
        );
        let jobs = generator.generate_day(0);
        let study = PowerDeliveryStudy::run(&cfg, &jobs, 3 * 3600, Policy::FirstFit);
        let base = study.outcome(PowerDelivery::StandardAC).report.avg_loss_mw;
        let smart = study.outcome(PowerDelivery::SmartRectifiers).report.avg_loss_mw;
        let dc = study.outcome(PowerDelivery::Direct380Vdc).report.avg_loss_mw;
        // Paper ordering: DC < smart < baseline losses.
        assert!(smart < base, "smart {smart} vs base {base}");
        assert!(dc < smart, "dc {dc} vs smart {smart}");
        // DC raises efficiency to ~97.3 %.
        let eff_dc = study.outcome(PowerDelivery::Direct380Vdc).report.efficiency;
        assert!((eff_dc - 0.973).abs() < 0.01, "eff={eff_dc}");
        // And cuts carbon.
        assert!(study.carbon_delta_percent(PowerDelivery::Direct380Vdc) < -3.0);
        // Savings are positive for both variants.
        assert!(study.yearly_savings_usd(PowerDelivery::SmartRectifiers, &cfg) > 0.0);
        assert!(
            study.yearly_savings_usd(PowerDelivery::Direct380Vdc, &cfg)
                > study.yearly_savings_usd(PowerDelivery::SmartRectifiers, &cfg)
        );
    }

    #[test]
    fn blockage_detector_flags_outliers() {
        let mut flows = vec![0.03; 25];
        flows[7] = 0.012;
        flows[19] = 0.015;
        let report = detect_blockages(&flows, 0.85);
        assert_eq!(report.flagged, vec![7, 19]);
    }

    #[test]
    fn blockage_detector_clean_plant_flags_nothing() {
        let flows = vec![0.03; 25];
        assert!(detect_blockages(&flows, 0.85).flagged.is_empty());
    }

    #[test]
    fn setpoint_sweep_finds_an_optimum() {
        // Small plant for speed; three candidates bracket the default.
        let spec = exadigit_cooling::PlantSpec::marconi100_like();
        let sweep =
            setpoint_sweep(&spec, &[20.0, 24.0, 28.0], 0.6, 16.0).expect("sweep runs");
        assert_eq!(sweep.candidates.len(), 3);
        let best = &sweep.candidates[sweep.best];
        for c in &sweep.candidates {
            assert!(best.pue <= c.pue + 1e-12);
            assert!((0.9..1.4).contains(&c.pue), "pue {}", c.pue);
        }
    }

    #[test]
    fn weather_sweep_correlates_wet_bulb_with_supply_temp() {
        let spec = exadigit_cooling::PlantSpec::marconi100_like();
        let points = weather_sweep(&spec, &[8.0, 16.0, 24.0], 0.6).expect("sweep runs");
        assert_eq!(points.len(), 3);
        // Hotter weather cannot cool the coolant: supply temperature and
        // cooling effort are non-decreasing in wet-bulb.
        assert!(points[2].secondary_supply_c >= points[0].secondary_supply_c - 0.5);
        assert!(points[2].cooling_power_w >= points[0].cooling_power_w * 0.95);
    }

    #[test]
    fn grid_fidelities_agree_inside_the_envelope() {
        // Train a surrogate on the small plant with the same 400-step
        // settle protocol the L4 grid uses, over a wet-bulb range that
        // stays inside one tower-staging regime (above ~wb 20 °C this
        // plant stages an extra cell, a PUE cliff no quadratic can
        // track — the training-envelope caveat in docs/FIDELITY.md).
        let spec = exadigit_cooling::PlantSpec::marconi100_like();
        let samples = crate::surrogate::generate_training_data(
            &spec,
            &[0.3, 0.6, 0.9],
            &[10.0, 14.0, 18.0],
            400,
        )
        .unwrap();
        let sur = crate::surrogate::Surrogate::fit(&samples).unwrap();
        let loads = [0.45, 0.7];
        let wbs = [12.0, 16.0];
        let l3 = whatif_grid(&spec, &Fidelity::Surrogate(sur), &loads, &wbs).unwrap();
        let l4 = whatif_grid(&spec, &Fidelity::Plant, &loads, &wbs).unwrap();
        assert_eq!(l3.points.len(), 4);
        assert_eq!(l3.extrapolations, 0, "interior points must not extrapolate");
        for (a, b) in l3.points.iter().zip(&l4.points) {
            assert_eq!(a.load_fraction, b.load_fraction);
            assert_eq!(a.wet_bulb_c, b.wet_bulb_c);
            assert!((a.pue - b.pue).abs() < 0.01, "L3 {} vs L4 {}", a.pue, b.pue);
            assert!(!b.extrapolated, "L4 never extrapolates");
        }
    }

    #[test]
    fn grid_flags_extrapolation_outside_the_envelope() {
        let spec = exadigit_cooling::PlantSpec::marconi100_like();
        let samples = crate::surrogate::generate_training_data(
            &spec,
            &[0.3, 0.6, 0.9],
            &[10.0, 18.0, 26.0],
            50,
        )
        .unwrap();
        let sur = crate::surrogate::Surrogate::fit(&samples).unwrap();
        let grid =
            whatif_grid(&spec, &Fidelity::Surrogate(sur), &[0.6, 1.4], &[18.0, 35.0]).unwrap();
        // (0.6, 18) is interior; (0.6, 35), (1.4, 18), (1.4, 35) are not.
        assert_eq!(grid.extrapolations, 3);
        assert!(!grid.points[0].extrapolated);
        assert!(grid.points[1].extrapolated);
        assert_eq!(Fidelity::Plant.label(), "L4");
    }

    #[test]
    fn throttle_scan_flags_low_flow_high_power() {
        let cells = thermal_throttle_scan(32.0, 95.0, &[250.0, 560.0], &[1.0, 0.1]);
        assert_eq!(cells.len(), 4);
        let full = cells.iter().find(|c| c.gpu_power_w == 560.0 && c.flow_fraction == 1.0).unwrap();
        let starved =
            cells.iter().find(|c| c.gpu_power_w == 560.0 && c.flow_fraction == 0.1).unwrap();
        assert!(!full.throttles, "design flow must not throttle");
        assert!(starved.throttles, "starved plate must throttle");
        assert!(starved.junction_c > full.junction_c);
    }
}
