//! Synthetic workload generation.
//!
//! §III-B3 of the paper: "we simply analyze system telemetry data to obtain
//! average and standard deviations for quantities such as average job
//! arrival time, number of nodes required, and wall time. Then it simply
//! generates randomly distributed values for average CPU/GPU utilizations."
//!
//! The generator is calibrated against the Table IV daily statistics. The
//! key structural fact encoded here is the *anti-correlation* between job
//! count and job size visible in Table IV (days with 5157 completed jobs
//! average 39 nodes/job; days averaging 5441 nodes/job complete 32 jobs):
//! each day draws an arrival rate, and the day's job-size scale is set so
//! the offered load stays near a target fraction of the machine. Fig. 9's
//! workload shape (1238 jobs, 400 single-node, four back-to-back 9216-node
//! HPL runs) is reproduced by [`benchmark_day`].

use crate::arrivals::PoissonArrivals;
use crate::job::{Job, JobId, JobState, UtilTrace};
use exadigit_sim::clock::SECONDS_PER_DAY;
use exadigit_sim::Rng;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the synthetic workload (telemetry-derived moments
/// in the paper; Table IV bands here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Median of the day-level mean-arrival-interval distribution, s.
    pub tavg_median_s: f64,
    /// Log-space sigma of the day-level arrival interval.
    pub tavg_sigma: f64,
    /// Clamp for day-level `t_avg`, s (Table IV: min 17, max 2988).
    pub tavg_range_s: (f64, f64),
    /// Target offered load as a fraction of machine node-seconds.
    pub offered_load: f64,
    /// Day-to-day standard deviation of the offered load (Table IV shows
    /// daily average power ranging 10.2–23.0 MW — light and heavy days).
    pub offered_load_std: f64,
    /// Mean job runtime, s (Table IV: 39 min average).
    pub runtime_mean_s: f64,
    /// Runtime std across days, s (Table IV std 14 min).
    pub runtime_std_s: f64,
    /// Per-day runtime clamp, s (Table IV: 17..101 min).
    pub runtime_range_s: (f64, f64),
    /// Fraction of single-node jobs (Fig. 9: 400 of 1238).
    pub single_node_fraction: f64,
    /// Mean CPU utilization of synthetic jobs.
    pub cpu_util_mean: f64,
    /// Std of CPU utilization.
    pub cpu_util_std: f64,
    /// Mean GPU utilization of synthetic jobs.
    pub gpu_util_mean: f64,
    /// Std of GPU utilization.
    pub gpu_util_std: f64,
    /// Total nodes of the target machine (for load normalisation).
    pub machine_nodes: usize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            tavg_median_s: 87.0,
            tavg_sigma: 0.96,
            tavg_range_s: (17.0, 2_988.0),
            offered_load: 0.82,
            offered_load_std: 0.16,
            runtime_mean_s: 39.0 * 60.0,
            runtime_std_s: 14.0 * 60.0,
            runtime_range_s: (17.0 * 60.0, 101.0 * 60.0),
            single_node_fraction: 0.32,
            cpu_util_mean: 0.35,
            cpu_util_std: 0.18,
            gpu_util_mean: 0.62,
            gpu_util_std: 0.22,
            machine_nodes: 9_472,
        }
    }
}

/// Day-level statistics the generator chose (exposed for validation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayProfile {
    /// Mean arrival interval for the day, s.
    pub t_avg_s: f64,
    /// Mean runtime for the day, s.
    pub runtime_mean_s: f64,
    /// Day job-size scale (mean nodes of the non-single-node mixture).
    pub nodes_scale: f64,
}

/// The synthetic workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    /// Generation parameters.
    pub params: WorkloadParams,
    rng: Rng,
    next_id: u64,
}

impl WorkloadGenerator {
    /// New generator with the given parameters and seed.
    pub fn new(params: WorkloadParams, seed: u64) -> Self {
        WorkloadGenerator { params, rng: Rng::new(seed), next_id: 1 }
    }

    /// Draw the day profile for `day_index` (deterministic per seed+day).
    pub fn day_profile(&self, day_index: u64) -> DayProfile {
        let mut rng = self.rng.split(0x5AD0 + day_index);
        let p = &self.params;
        let t_avg = (p.tavg_median_s * (p.tavg_sigma * rng.standard_normal()).exp())
            .clamp(p.tavg_range_s.0, p.tavg_range_s.1);
        let runtime = rng
            .normal(p.runtime_mean_s, p.runtime_std_s)
            .clamp(p.runtime_range_s.0, p.runtime_range_s.1);
        // Offered load: jobs/day × mean_nodes × runtime = load × capacity,
        // with the load itself varying day to day (light weekend days vs
        // saturated campaign days).
        let day_load =
            rng.normal(p.offered_load, p.offered_load_std).clamp(0.30, 0.97);
        let jobs_per_day = SECONDS_PER_DAY as f64 / t_avg;
        let capacity = p.machine_nodes as f64 * SECONDS_PER_DAY as f64;
        let mean_nodes = (day_load * capacity / (jobs_per_day * runtime))
            .clamp(1.0, p.machine_nodes as f64 * 0.6);
        DayProfile { t_avg_s: t_avg, runtime_mean_s: runtime, nodes_scale: mean_nodes }
    }

    /// Generate one day of jobs with submit times in
    /// `[day_index·86400, (day_index+1)·86400)`.
    pub fn generate_day(&mut self, day_index: u64) -> Vec<Job> {
        let profile = self.day_profile(day_index);
        let mut rng = self.rng.split(0xDA11 + day_index);
        let p = self.params.clone();
        let arrivals = PoissonArrivals::new(profile.t_avg_s)
            .arrivals_within(&mut rng, SECONDS_PER_DAY as f64);
        let day_start = day_index * SECONDS_PER_DAY;
        let mut jobs = Vec::with_capacity(arrivals.len());
        for t in arrivals {
            let id = self.next_id;
            self.next_id += 1;
            jobs.push(self.synth_job(&mut rng, id, day_start + t as u64, &profile, &p));
        }
        jobs
    }

    /// Generate `days` consecutive days of jobs.
    pub fn generate_span(&mut self, days: u64) -> Vec<Job> {
        let mut all = Vec::new();
        for d in 0..days {
            all.extend(self.generate_day(d));
        }
        all
    }

    fn synth_job(
        &mut self,
        rng: &mut Rng,
        id: u64,
        submit: u64,
        profile: &DayProfile,
        p: &WorkloadParams,
    ) -> Job {
        // Node count: single-node mass plus a lognormal body whose mean is
        // chosen so the day's total mass matches the profile scale.
        let nodes = if rng.chance(p.single_node_fraction) {
            1
        } else {
            let body_mean = (profile.nodes_scale - p.single_node_fraction)
                .max(1.0)
                / (1.0 - p.single_node_fraction);
            let n = rng.lognormal_from_moments(body_mean, body_mean * 2.2);
            (n.round() as usize).clamp(1, p.machine_nodes)
        };
        let wall = rng
            .lognormal_from_moments(profile.runtime_mean_s, profile.runtime_mean_s * 0.6)
            .clamp(60.0, 24.0 * 3600.0) as u64;
        let cpu = rng.normal_clamped(p.cpu_util_mean, p.cpu_util_std, 0.02, 1.0) as f32;
        let gpu = rng.normal_clamped(p.gpu_util_mean, p.gpu_util_std, 0.0, 1.0) as f32;
        Job::new(id, format!("synthetic-{id}"), nodes, wall, submit, cpu, gpu)
    }
}

/// The High-Performance Linpack verification job (§IV-2 of the paper):
/// 9216 nodes with GPUs at 79 % and CPUs at 33 % during the core phase,
/// with a ramp-up and a tapering endgame encoded as a 15 s-quantum trace.
pub fn hpl_job(id: u64, submit_s: u64) -> Job {
    const QUANTUM: u32 = 15;
    const WALL_S: u64 = 2 * 3600;
    let steps = (WALL_S / QUANTUM as u64) as usize;
    let mut gpu = Vec::with_capacity(steps);
    let mut cpu = Vec::with_capacity(steps);
    for i in 0..steps {
        let frac = i as f64 / steps as f64;
        let (g, c) = if frac < 0.04 {
            // Startup: panel distribution warm-up.
            (0.15 + 8.0 * frac, 0.25)
        } else if frac < 0.85 {
            // Core phase: the Table III verification point.
            (0.79, 0.33)
        } else {
            // Endgame: trailing panels shrink, utilization tapers.
            let t = (frac - 0.85) / 0.15;
            (0.79 * (1.0 - 0.8 * t), 0.33 * (1.0 - 0.5 * t))
        };
        gpu.push(g as f32);
        cpu.push(c as f32);
    }
    let mut job = Job::new(id, "hpl-9216", 9216, WALL_S, submit_s, 0.0, 0.0);
    job.cpu_util = UtilTrace::Series { quantum_s: QUANTUM, values: cpu };
    job.gpu_util = UtilTrace::Series { quantum_s: QUANTUM, values: gpu };
    job
}

/// The OpenMxP mixed-precision benchmark (Fig. 8 of the paper): similar
/// scale to HPL but a hotter GPU profile and a shorter run.
pub fn openmxp_job(id: u64, submit_s: u64) -> Job {
    const QUANTUM: u32 = 15;
    const WALL_S: u64 = 45 * 60;
    let steps = (WALL_S / QUANTUM as u64) as usize;
    let mut gpu = Vec::with_capacity(steps);
    let mut cpu = Vec::with_capacity(steps);
    for i in 0..steps {
        let frac = i as f64 / steps as f64;
        let (g, c) = if frac < 0.05 {
            (0.2 + 14.0 * frac, 0.2)
        } else if frac < 0.9 {
            // Mixed-precision tensor kernels push GPUs harder than HPL.
            (0.90, 0.22)
        } else {
            (0.4, 0.15)
        };
        gpu.push(g as f32);
        cpu.push(c as f32);
    }
    let mut job = Job::new(id, "openmxp-9216", 9216, WALL_S, submit_s, 0.0, 0.0);
    job.cpu_util = UtilTrace::Series { quantum_s: QUANTUM, values: cpu };
    job.gpu_util = UtilTrace::Series { quantum_s: QUANTUM, values: gpu };
    job
}

/// The Fig. 9 replay day: ~1238 jobs of which ~400 are single-node, plus
/// four back-to-back 9216-node HPL runs.
pub fn benchmark_day(seed: u64) -> Vec<Job> {
    let params = WorkloadParams {
        tavg_median_s: 70.0,
        tavg_sigma: 0.05, // pin the day near the Fig. 9 job count
        single_node_fraction: 0.33,
        offered_load: 0.55, // leave room for the HPL block
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(params, seed);
    let mut jobs = generator.generate_day(0);
    // Four back-to-back HPL runs in the early morning (Fig. 9 shows them
    // as consecutive plateaus).
    let mut t = 3600;
    for k in 0..4 {
        jobs.push(hpl_job(900_000 + k, t));
        t += 2 * 3600 + 300; // 5 min gap between runs
    }
    jobs.sort_by_key(|j| j.submit_time_s);
    jobs
}

/// Reset helper: mark a batch of jobs pending (used when replaying the
/// same job list through several what-if variants).
pub fn reset_jobs(jobs: &mut [Job]) {
    for j in jobs {
        j.state = JobState::Pending;
        j.start_time_s = None;
        j.end_time_s = None;
    }
}

/// Renumber job ids sequentially (after merging workloads).
pub fn renumber(jobs: &mut [Job]) {
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = JobId(i as u64 + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_profile_is_deterministic() {
        let g1 = WorkloadGenerator::new(WorkloadParams::default(), 42);
        let g2 = WorkloadGenerator::new(WorkloadParams::default(), 42);
        for d in 0..5 {
            assert_eq!(g1.day_profile(d), g2.day_profile(d));
        }
    }

    #[test]
    fn day_profiles_differ_across_days() {
        let g = WorkloadGenerator::new(WorkloadParams::default(), 42);
        let p0 = g.day_profile(0);
        let p1 = g.day_profile(1);
        assert_ne!(p0, p1);
    }

    #[test]
    fn tavg_respects_table4_range() {
        let g = WorkloadGenerator::new(WorkloadParams::default(), 7);
        for d in 0..183 {
            let p = g.day_profile(d);
            assert!((17.0..=2988.0).contains(&p.t_avg_s), "day {d}: {}", p.t_avg_s);
            assert!((17.0 * 60.0..=101.0 * 60.0).contains(&p.runtime_mean_s));
        }
    }

    #[test]
    fn offered_load_roughly_constant() {
        // jobs/day × nodes × runtime ≈ offered_load × capacity for every day.
        let g = WorkloadGenerator::new(WorkloadParams::default(), 3);
        for d in 0..50 {
            let p = g.day_profile(d);
            let jobs = 86_400.0 / p.t_avg_s;
            let load = jobs * p.nodes_scale * p.runtime_mean_s / (9_472.0 * 86_400.0);
            // Clamps distort extreme days; most must sit near the target.
            assert!(load < 1.0 + 1e-9, "day {d} load {load}");
        }
    }

    #[test]
    fn generated_jobs_valid() {
        let mut g = WorkloadGenerator::new(WorkloadParams::default(), 11);
        let jobs = g.generate_day(0);
        assert!(!jobs.is_empty());
        for j in &jobs {
            assert!(j.nodes >= 1 && j.nodes <= 9_472);
            assert!(j.wall_time_s >= 60);
            assert!(j.submit_time_s < 86_400);
            assert!(j.cpu_util.mean() >= 0.0 && j.cpu_util.mean() <= 1.0);
        }
    }

    #[test]
    fn span_submit_times_monotone_per_day() {
        let mut g = WorkloadGenerator::new(WorkloadParams::default(), 13);
        let jobs = g.generate_span(3);
        // Day boundaries respected.
        for j in &jobs {
            assert!(j.submit_time_s < 3 * 86_400);
        }
    }

    #[test]
    fn single_node_fraction_near_target() {
        let mut g = WorkloadGenerator::new(
            WorkloadParams { tavg_median_s: 30.0, tavg_sigma: 0.01, ..Default::default() },
            17,
        );
        let jobs = g.generate_day(0);
        let singles = jobs.iter().filter(|j| j.nodes == 1).count();
        let frac = singles as f64 / jobs.len() as f64;
        assert!((frac - 0.32).abs() < 0.08, "frac={frac} of {}", jobs.len());
    }

    #[test]
    fn hpl_core_phase_matches_table3_point() {
        let j = hpl_job(1, 0);
        assert_eq!(j.nodes, 9216);
        // Mid-run sample must be exactly the verification utilizations.
        let mid = j.wall_time_s / 2;
        assert!((j.gpu_util.at(mid) - 0.79).abs() < 1e-6);
        assert!((j.cpu_util.at(mid) - 0.33).abs() < 1e-6);
        // Ramp-up starts low.
        assert!(j.gpu_util.at(0) < 0.3);
    }

    #[test]
    fn openmxp_hotter_than_hpl() {
        let h = hpl_job(1, 0);
        let o = openmxp_job(2, 0);
        let h_mid = h.gpu_util.at(h.wall_time_s / 2);
        let o_mid = o.gpu_util.at(o.wall_time_s / 2);
        assert!(o_mid > h_mid);
        assert!(o.wall_time_s < h.wall_time_s);
    }

    #[test]
    fn benchmark_day_contains_four_hpl_runs() {
        let jobs = benchmark_day(42);
        let hpl: Vec<&Job> = jobs.iter().filter(|j| j.name.starts_with("hpl")).collect();
        assert_eq!(hpl.len(), 4);
        // Back-to-back: each next run submits after the previous.
        for w in hpl.windows(2) {
            assert!(w[1].submit_time_s > w[0].submit_time_s);
        }
        // Total job count in the Fig. 9 ballpark (1238 jobs).
        assert!((800..1800).contains(&jobs.len()), "n={}", jobs.len());
        // Single-node share ≈ 400/1238.
        let singles = jobs.iter().filter(|j| j.nodes == 1).count();
        assert!(singles > jobs.len() / 5, "singles={singles}");
    }

    #[test]
    fn reset_jobs_clears_lifecycle() {
        let mut jobs = vec![hpl_job(1, 0)];
        jobs[0].state = JobState::Completed;
        jobs[0].start_time_s = Some(10);
        jobs[0].end_time_s = Some(20);
        reset_jobs(&mut jobs);
        assert_eq!(jobs[0].state, JobState::Pending);
        assert!(jobs[0].start_time_s.is_none());
        assert!(jobs[0].end_time_s.is_none());
    }
}
