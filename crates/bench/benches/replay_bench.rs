//! Replay throughput — the paper's headline performance numbers: "Each
//! 24-hour replay takes about nine minutes to run with cooling, or just
//! three minutes without; the entire analysis takes about an hour when
//! running the different days in parallel". These benches measure a
//! 30-simulated-minute fragment with and without cooling, the pool-backed
//! parallel-day sweep (4-thread pool vs serial), and one UQ ensemble
//! member. Pool-width scaling lives in `ensemble_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use exadigit_cooling::CoolingModel;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
use exadigit_raps::uq::{run_ensemble, UqPerturbations};
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use rayon::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn fragment_jobs(seed: u64) -> Vec<exadigit_raps::job::Job> {
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), seed);
    generator.generate_day(0).into_iter().filter(|j| j.submit_time_s < 1_800).collect()
}

fn bench_replay_fragment(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_30min");
    group.measurement_time(Duration::from_secs(8)).sample_size(10);
    group.bench_function("without_cooling", |b| {
        b.iter(|| {
            let mut sim = RapsSimulation::new(
                SystemConfig::frontier(),
                PowerDelivery::StandardAC,
                Policy::FirstFit,
                300,
            );
            sim.submit_jobs(fragment_jobs(5));
            sim.run_until(1_800).unwrap();
            black_box(sim.report().avg_power_mw)
        })
    });
    group.bench_function("with_cooling", |b| {
        b.iter(|| {
            let mut sim = RapsSimulation::new(
                SystemConfig::frontier(),
                PowerDelivery::StandardAC,
                Policy::FirstFit,
                300,
            );
            let coupling =
                CoolingCoupling::attach(Box::new(CoolingModel::frontier()), 25).unwrap();
            sim.attach_cooling(coupling);
            sim.submit_jobs(fragment_jobs(5));
            sim.run_until(1_800).unwrap();
            black_box(sim.report().avg_pue)
        })
    });
    group.finish();
}

fn bench_parallel_days(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_days");
    group.measurement_time(Duration::from_secs(10)).sample_size(10);
    let run_day = |day: u64| {
        let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 11);
        let mut jobs = generator.generate_day(day);
        for j in &mut jobs {
            j.submit_time_s -= day * 86_400;
            j.submit_time_s = j.submit_time_s.min(1_799);
        }
        let mut sim = RapsSimulation::new(
            SystemConfig::frontier(),
            PowerDelivery::StandardAC,
            Policy::FirstFit,
            300,
        );
        sim.submit_jobs(jobs);
        sim.run_until(1_800).unwrap();
        sim.report().avg_power_mw
    };
    group.bench_function("8_fragments_serial", |b| {
        b.iter(|| {
            let total: f64 = (0..8u64).map(run_day).sum();
            black_box(total)
        })
    });
    group.bench_function("8_fragments_pool4", |b| {
        b.iter(|| {
            let total: f64 =
                rayon::with_threads(4, || (0..8u64).into_par_iter().map(run_day).sum());
            black_box(total)
        })
    });
    group.finish();
}

fn bench_uq_member(c: &mut Criterion) {
    let mut group = c.benchmark_group("uq");
    group.measurement_time(Duration::from_secs(8)).sample_size(10);
    let mut cfg = SystemConfig::frontier();
    cfg.partitions[0].nodes = 1_024;
    cfg.cooling.num_cdus = 3;
    let jobs = vec![exadigit_raps::job::Job::new(1, "load", 512, 900, 1, 0.7, 0.8)];
    group.bench_function("ensemble_8_members_1024_nodes", |b| {
        b.iter(|| {
            black_box(run_ensemble(&cfg, &jobs, 900, 8, &UqPerturbations::default(), 3).power_mean_mw)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replay_fragment, bench_parallel_days, bench_uq_member);
criterion_main!(benches);
