//! Determinism under parallelism — the ensemble engine's core contract.
//!
//! The executor may only change *which thread* runs a scenario, never a
//! single output bit: per-scenario RNG streams are keyed by scenario
//! index, results land in index-ordered slots, and every reduction folds
//! those slots sequentially. These tests pin that contract at the twin's
//! hottest ensemble path (§IV Monte-Carlo UQ) and check that a panicking
//! scenario propagates to the caller instead of wedging the pool.

use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::uq::{run_ensemble_on, UqPerturbations, UqSummary};
use exadigit_sim::EnsembleRunner;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn tiny_system() -> SystemConfig {
    let mut cfg = SystemConfig::frontier();
    cfg.partitions[0].nodes = 256;
    cfg.cooling.num_cdus = 1;
    cfg.cooling.racks_per_cdu = 2;
    cfg
}

fn run_uq(threads: usize) -> UqSummary {
    let cfg = tiny_system();
    let jobs = vec![Job::new(1, "load", 128, 900, 1, 0.8, 0.8)];
    let runner = EnsembleRunner::new(2024).threads(threads);
    run_ensemble_on(&runner, &cfg, &jobs, 900, 64, &UqPerturbations::default())
}

/// Bit-compare two summaries field by field, so a failure names the first
/// quantity that drifted rather than dumping two whole structs.
fn assert_bits_identical(seq: &UqSummary, par: &UqSummary, width: usize) {
    let pairs = [
        ("power_mean_mw", seq.power_mean_mw, par.power_mean_mw),
        ("power_std_mw", seq.power_std_mw, par.power_std_mw),
        ("power_ci90_lo", seq.power_ci90_mw.0, par.power_ci90_mw.0),
        ("power_ci90_hi", seq.power_ci90_mw.1, par.power_ci90_mw.1),
        ("loss_mean_mw", seq.loss_mean_mw, par.loss_mean_mw),
        ("loss_std_mw", seq.loss_std_mw, par.loss_std_mw),
        ("loss_ci90_lo", seq.loss_ci90_mw.0, par.loss_ci90_mw.0),
        ("loss_ci90_hi", seq.loss_ci90_mw.1, par.loss_ci90_mw.1),
    ];
    for (name, a, b) in pairs {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name} drifted at pool width {width}: {a} vs {b}"
        );
    }
    assert_eq!(seq.raw.len(), par.raw.len());
    for (i, (a, b)) in seq.raw.iter().zip(&par.raw).enumerate() {
        assert_eq!(
            a.avg_power_mw.to_bits(),
            b.avg_power_mw.to_bits(),
            "member {i} power drifted at pool width {width}"
        );
        assert_eq!(
            a.energy_mwh.to_bits(),
            b.energy_mwh.to_bits(),
            "member {i} energy drifted at pool width {width}"
        );
    }
}

#[test]
fn uq_64_draws_bit_identical_on_1_and_n_threads() {
    let seq = run_uq(1);
    assert_eq!(seq.members, 64);
    for width in [2usize, 4, 8] {
        let par = run_uq(width);
        assert_bits_identical(&seq, &par, width);
    }
}

#[test]
fn panic_in_worker_propagates_to_caller() {
    let runner = EnsembleRunner::new(0).threads(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        runner.run_draws(32, |ctx| {
            if ctx.index == 13 {
                panic!("scenario 13 failed");
            }
            ctx.index
        })
    }));
    let payload = result.expect_err("a panicking scenario must fail the batch");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "scenario 13 failed");
}

#[test]
fn pool_is_reusable_after_a_panicked_batch() {
    let runner = EnsembleRunner::new(0).threads(4);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner.run_draws(8, |_| -> usize { panic!("poison attempt") })
    }));
    // The pool must come back clean: full batch, right values, right order.
    let after = runner.run_draws(100, |ctx| ctx.index * 2);
    assert_eq!(after, (0..100).map(|i| i * 2).collect::<Vec<_>>());
}
