//! Regenerates **Table III** of the paper: RAPS power verification tests
//! (idle / HPL core phase / peak) against the synthetic physical twin's
//! "telemetry" column.
//!
//! Paper row reference:
//! ```text
//! Idle power  9472  telemetry 7.4 MW  RAPS 7.24 MW  2.1 %
//! HPL (core)  9216  telemetry 21.3    RAPS 22.3     4.7 %
//! Peak power  9472  telemetry 27.4    RAPS 28.2     3.1 %
//! ```

use exadigit_bench::{mw, section};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::{PowerDelivery, PowerModel};
use exadigit_telemetry::SyntheticTwin;

fn hpl_power(model: &PowerModel) -> f64 {
    // 9216 nodes at GPU 79 % / CPU 33 %, the rest idle (§IV-2).
    let mut acc = model.new_accumulator();
    for node in 0..9472usize {
        let rack = model.rack_of_node(node);
        if node < 9216 {
            model.add_nodes(&mut acc, rack, 1, 0.33, 0.79, 4);
        } else {
            model.add_nodes(&mut acc, rack, 1, 0.0, 0.0, 4);
        }
    }
    model.evaluate(&acc).system_w
}

fn main() {
    section("Table III — RAPS power verification tests");
    let model = PowerModel::new(SystemConfig::frontier(), PowerDelivery::StandardAC);
    let twin = SyntheticTwin::frontier();

    let rows = [
        (
            "Idle power",
            9472,
            twin.measured_uniform_power(0.0, 0.0),
            model.uniform_power(0.0, 0.0).system_w,
            (7.4, 7.24, 2.1),
        ),
        (
            "HPL (core)",
            9216,
            twin.measured_uniform_power(0.33, 0.79) - {
                // telemetry side: 9216 active / 256 idle under the twin's
                // perturbed model
                let pm = PowerModel::new(twin.perturbed_system(), PowerDelivery::StandardAC);
                pm.uniform_power(0.33, 0.79).system_w - hpl_power(&pm)
            },
            hpl_power(&model),
            (21.3, 22.3, 4.7),
        ),
        (
            "Peak power",
            9472,
            twin.measured_uniform_power(1.0, 1.0),
            model.uniform_power(1.0, 1.0).system_w,
            (27.4, 28.2, 3.1),
        ),
    ];

    println!(
        "  {:<12} {:>6} {:>16} {:>12} {:>9}   {:>28}",
        "Test", "Nodes", "Telemetry (MW)", "RAPS (MW)", "% Error", "paper (tele / RAPS / %err)"
    );
    for (name, nodes, telemetry_w, raps_w, (p_tele, p_raps, p_err)) in rows {
        let err = 100.0 * (raps_w - telemetry_w) / telemetry_w;
        println!(
            "  {name:<12} {nodes:>6} {:>16.2} {:>12.2} {:>8.1} %   {:>10.1} / {:>5.2} / {:>4.1}",
            mw(telemetry_w),
            mw(raps_w),
            err.abs(),
            p_tele,
            p_raps,
            p_err,
        );
    }

    println!("\n  shape check: RAPS idle below telemetry, HPL/peak above — as in the paper.");
}
