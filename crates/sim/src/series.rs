//! Fixed-step time series.
//!
//! Telemetry in the paper arrives at heterogeneous cadences (Table II: 1 s
//! measured power, 15 s rack power and cooling outputs, 60 s wet-bulb,
//! 10 min pump power...). `TimeSeries` stores a uniformly sampled channel
//! and supports the resampling needed to align model output with telemetry
//! for RMSE/MAE validation.

use serde::{Deserialize, Serialize};

/// A uniformly sampled time series: value `i` is the sample at
/// `t0 + i * dt` (seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Time of the first sample, in seconds.
    pub t0: f64,
    /// Sample period in seconds (must be > 0).
    pub dt: f64,
    /// Sample values.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// Empty series starting at `t0` with period `dt`.
    pub fn new(t0: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        TimeSeries { t0, dt, values: Vec::new() }
    }

    /// Empty series with pre-reserved capacity (avoids re-allocation in
    /// multi-day replays; see the perf-book guidance on `Vec` growth).
    pub fn with_capacity(t0: f64, dt: f64, capacity: usize) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        TimeSeries { t0, dt, values: Vec::with_capacity(capacity) }
    }

    /// Build from existing samples.
    pub fn from_values(t0: f64, dt: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        TimeSeries { t0, dt, values }
    }

    /// Append the next sample.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Append `n` copies of the same sample in one call. Bit-identical to
    /// `n` sequential [`TimeSeries::push`] calls of `value` (no arithmetic
    /// happens — the same f64 is cloned), which is what lets the lazy
    /// record backfill in the event kernel materialise the samples of a
    /// constant-power gap without visiting each record boundary.
    #[inline]
    pub fn push_n(&mut self, value: f64, n: usize) {
        if n > 0 {
            self.values.resize(self.values.len() + n, value);
        }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Time of sample `i`.
    #[inline]
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + i as f64 * self.dt
    }

    /// Time of the last sample (None when empty).
    pub fn end_time(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.time_at(self.values.len() - 1))
        }
    }

    /// Linear interpolation at time `t`, clamped to the series ends.
    pub fn sample_at(&self, t: f64) -> f64 {
        assert!(!self.values.is_empty(), "cannot sample an empty series");
        let pos = (t - self.t0) / self.dt;
        if pos <= 0.0 {
            return self.values[0];
        }
        let last = self.values.len() - 1;
        if pos >= last as f64 {
            return self.values[last];
        }
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }

    /// Resample to a new period via linear interpolation, covering the same
    /// time span. Used to align e.g. 60 s wet-bulb telemetry onto the 15 s
    /// cooling-model grid.
    pub fn resample(&self, new_dt: f64) -> TimeSeries {
        assert!(new_dt > 0.0);
        assert!(!self.values.is_empty());
        let span = (self.values.len() - 1) as f64 * self.dt;
        let n = (span / new_dt).floor() as usize + 1;
        let mut out = TimeSeries::with_capacity(self.t0, new_dt, n);
        for i in 0..n {
            out.push(self.sample_at(self.t0 + i as f64 * new_dt));
        }
        out
    }

    /// Mean of all samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum sample (NaN when empty).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Maximum sample (NaN when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Integrate the series over its span using the trapezoidal rule.
    /// With values in watts and dt in seconds, this yields joules.
    pub fn integrate(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for w in self.values.windows(2) {
            acc += 0.5 * (w[0] + w[1]) * self.dt;
        }
        acc
    }

    /// Element-wise map into a new series.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries {
            t0: self.t0,
            dt: self.dt,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.time_at(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        TimeSeries::from_values(0.0, 15.0, (0..=10).map(|i| i as f64).collect())
    }

    #[test]
    fn sample_interpolates_linearly() {
        let s = ramp();
        assert_eq!(s.sample_at(0.0), 0.0);
        assert_eq!(s.sample_at(15.0), 1.0);
        assert!((s.sample_at(22.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_clamps_at_ends() {
        let s = ramp();
        assert_eq!(s.sample_at(-100.0), 0.0);
        assert_eq!(s.sample_at(1e9), 10.0);
    }

    #[test]
    fn resample_preserves_span_and_values() {
        let s = ramp(); // spans 150 s
        let r = s.resample(5.0);
        assert_eq!(r.len(), 31);
        assert!((r.sample_at(75.0) - 5.0).abs() < 1e-12);
        assert!((r.values[30] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn resample_downsamples() {
        let s = ramp();
        let r = s.resample(30.0);
        assert_eq!(r.len(), 6);
        assert_eq!(r.values[1], 2.0);
    }

    #[test]
    fn integrate_trapezoid() {
        // Constant 2.0 over 4 samples of dt=1 -> area 6.0.
        let s = TimeSeries::from_values(0.0, 1.0, vec![2.0; 4]);
        assert!((s.integrate() - 6.0).abs() < 1e-12);
        // Ramp 0..3 over dt=1 -> area 4.5.
        let s = TimeSeries::from_values(0.0, 1.0, vec![0.0, 1.0, 2.0, 3.0]);
        assert!((s.integrate() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_helpers() {
        let s = ramp();
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 10.0);
        assert!((s.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn push_n_matches_sequential_pushes() {
        let mut seq = TimeSeries::new(0.0, 15.0);
        let mut fast = TimeSeries::new(0.0, 15.0);
        seq.push(1.5);
        fast.push(1.5);
        for _ in 0..100 {
            seq.push(7.25);
        }
        fast.push_n(7.25, 100);
        assert_eq!(seq, fast);
        // Zero-count push is a no-op.
        let before = fast.clone();
        fast.push_n(999.0, 0);
        assert_eq!(fast, before);
    }

    #[test]
    fn map_applies_elementwise() {
        let s = ramp().map(|v| v * 2.0);
        assert_eq!(s.values[3], 6.0);
    }

    #[test]
    #[should_panic]
    fn zero_dt_rejected() {
        let _ = TimeSeries::new(0.0, 0.0);
    }
}
