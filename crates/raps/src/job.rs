//! Jobs and utilization traces.
//!
//! §III-B of the paper: "each job is characterized by: (1) the number of
//! nodes required, (2) the wall time, and (3) CPU/GPU utilization traces
//! for a given trace quanta" (set to 15 s to match telemetry).

use serde::{Deserialize, Serialize};

/// Unique job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Lifecycle of a job in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, waiting for nodes.
    Pending,
    /// Allocated and consuming power.
    Running,
    /// Finished; nodes released.
    Completed,
}

/// A CPU or GPU utilization trace sampled at a fixed trace quantum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UtilTrace {
    /// Constant utilization for the whole job (synthetic jobs).
    Constant(f32),
    /// Time-indexed samples at `quantum_s` resolution (telemetry replay).
    Series {
        /// Sample period, seconds (paper: 15).
        quantum_s: u32,
        /// Utilization samples in `[0, 1]`.
        values: Vec<f32>,
    },
}

impl UtilTrace {
    /// Utilization at `elapsed_s` seconds into the job, clamped to `[0,1]`.
    /// Series traces hold their last value beyond the end (jobs can run
    /// slightly past the recorded trace).
    pub fn at(&self, elapsed_s: u64) -> f64 {
        let v = match self {
            UtilTrace::Constant(u) => *u,
            UtilTrace::Series { quantum_s, values } => {
                if values.is_empty() {
                    0.0
                } else {
                    let idx = (elapsed_s / *quantum_s as u64) as usize;
                    values[idx.min(values.len() - 1)]
                }
            }
        };
        (v as f64).clamp(0.0, 1.0)
    }

    /// Mean utilization across the trace.
    pub fn mean(&self) -> f64 {
        match self {
            UtilTrace::Constant(u) => (*u as f64).clamp(0.0, 1.0),
            UtilTrace::Series { values, .. } => {
                if values.is_empty() {
                    0.0
                } else {
                    values.iter().map(|&v| (v as f64).clamp(0.0, 1.0)).sum::<f64>()
                        / values.len() as f64
                }
            }
        }
    }
}

/// One job: the unit RAPS schedules and accounts power for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Display name (e.g. `hpl-9216` or `synthetic-1042`).
    pub name: String,
    /// Nodes required.
    pub nodes: usize,
    /// Requested wall time, seconds.
    pub wall_time_s: u64,
    /// Submission time, seconds from simulation start.
    pub submit_time_s: u64,
    /// Target partition (index into `SystemConfig::partitions`).
    pub partition: usize,
    /// CPU utilization trace.
    pub cpu_util: UtilTrace,
    /// GPU utilization trace.
    pub gpu_util: UtilTrace,
    /// Current state.
    pub state: JobState,
    /// Start time once running, seconds.
    pub start_time_s: Option<u64>,
    /// End time once completed, seconds.
    pub end_time_s: Option<u64>,
}

impl Job {
    /// A new pending job with constant utilizations.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        name: impl Into<String>,
        nodes: usize,
        wall_time_s: u64,
        submit_time_s: u64,
        cpu_util: f32,
        gpu_util: f32,
    ) -> Self {
        Job {
            id: JobId(id),
            name: name.into(),
            nodes,
            wall_time_s,
            submit_time_s,
            partition: 0,
            cpu_util: UtilTrace::Constant(cpu_util),
            gpu_util: UtilTrace::Constant(gpu_util),
            state: JobState::Pending,
            start_time_s: None,
            end_time_s: None,
        }
    }

    /// Seconds the job has been running at absolute time `now_s`
    /// (zero when not yet started).
    pub fn elapsed_at(&self, now_s: u64) -> u64 {
        match self.start_time_s {
            Some(start) => now_s.saturating_sub(start),
            None => 0,
        }
    }

    /// True when the job should complete at or before `now_s`.
    pub fn is_due(&self, now_s: u64) -> bool {
        match self.start_time_s {
            Some(start) => now_s >= start + self.wall_time_s,
            None => false,
        }
    }

    /// Queue wait (start − submit) once started.
    pub fn wait_time_s(&self) -> Option<u64> {
        self.start_time_s.map(|s| s.saturating_sub(self.submit_time_s))
    }

    /// Node-seconds consumed (for utilization accounting).
    pub fn node_seconds(&self) -> u64 {
        self.nodes as u64 * self.wall_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_clamps() {
        assert_eq!(UtilTrace::Constant(1.5).at(0), 1.0);
        assert_eq!(UtilTrace::Constant(-0.5).at(100), 0.0);
        assert_eq!(UtilTrace::Constant(0.79).at(42), 0.79f32 as f64);
    }

    #[test]
    fn series_trace_indexes_by_quantum() {
        let t = UtilTrace::Series { quantum_s: 15, values: vec![0.1, 0.5, 0.9] };
        assert_eq!(t.at(0), 0.1f32 as f64);
        assert_eq!(t.at(14), 0.1f32 as f64);
        assert_eq!(t.at(15), 0.5f32 as f64);
        assert_eq!(t.at(44), 0.9f32 as f64);
        // Holds the last value beyond the end.
        assert_eq!(t.at(10_000), 0.9f32 as f64);
    }

    #[test]
    fn empty_series_is_zero() {
        let t = UtilTrace::Series { quantum_s: 15, values: vec![] };
        assert_eq!(t.at(0), 0.0);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn mean_of_series() {
        let t = UtilTrace::Series { quantum_s: 15, values: vec![0.0, 1.0] };
        assert!((t.mean() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn job_lifecycle_accessors() {
        let mut j = Job::new(1, "test", 16, 3600, 100, 0.3, 0.8);
        assert_eq!(j.state, JobState::Pending);
        assert!(!j.is_due(1_000_000));
        j.start_time_s = Some(200);
        j.state = JobState::Running;
        assert_eq!(j.elapsed_at(500), 300);
        assert!(!j.is_due(200 + 3599));
        assert!(j.is_due(200 + 3600));
        assert_eq!(j.wait_time_s(), Some(100));
        assert_eq!(j.node_seconds(), 16 * 3600);
    }
}
