//! Quickstart: build the Frontier digital twin, run one simulated hour of
//! synthetic workload with the cooling plant attached, and print the
//! §III-B5 run report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use exadigit_core::{DigitalTwin, TwinConfig};
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_viz::chart::spark_series;
use exadigit_viz::dashboard::gauge;

fn main() {
    println!("ExaDigiT-rs quickstart — Frontier digital twin\n");

    // 1. Assemble the twin from the built-in Frontier configuration
    //    (Table I system + Fig. 5 cooling plant).
    let config = TwinConfig::frontier();
    let mut twin = DigitalTwin::new(config).expect("frontier config is valid");

    // 2. Generate a synthetic workload (§III-B3) and submit the first
    //    hour's worth of jobs.
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 42);
    let jobs: Vec<_> = generator
        .generate_day(0)
        .into_iter()
        .filter(|j| j.submit_time_s < 3_600)
        .collect();
    println!("submitting {} jobs for the first simulated hour...", jobs.len());
    twin.submit(jobs);

    // 3. Run one simulated hour (Algorithm 1: 1 s ticks, cooling every
    //    15 s).
    twin.run(3_600).expect("run");

    // 4. Inspect.
    let report = twin.report();
    println!("\n{report}\n");

    let outputs = twin.outputs();
    println!("system power [MW]  {}", spark_series(&outputs.system_power_w.map(|w| w / 1e6), 64));
    println!("utilization        {}", spark_series(&outputs.utilization, 64));
    println!("{}", gauge("utilization", twin.utilization(), 32));

    if let Some(pue) = twin.cooling_output("pue") {
        println!("\ncooling plant:");
        println!("  PUE                      {pue:.4}");
        for name in [
            "facility.htw_supply_temp",
            "facility.htw_return_temp",
            "primary.num_pumps_staged",
            "ct.num_cells_staged",
        ] {
            println!("  {name:<24} {:.2}", twin.cooling_output(name).unwrap());
        }
    }
}
