//! Regenerates **Fig. 7** of the paper: cooling-model validation against
//! (synthetic) telemetry — (a) CDU primary flow, (b) CDU primary return
//! temperature, (c) HTW supply pressure, (d) PUE — plus the **Table II**
//! channel specification and the **Fig. 5** station registry.
//!
//! ```sh
//! cargo run --release -p exadigit-bench --bin fig7_cooling_validation -- --hours 24
//! ```

use exadigit_bench::{arg_u64, section};
use exadigit_cooling::stations::STATIONS;
use exadigit_cooling::CoolingModel;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_sim::TimeSeries;
use exadigit_telemetry::{compare_channels, SyntheticTwin};
use exadigit_viz::chart::spark_series;

fn main() {
    let hours = arg_u64("--hours", 24);
    let span = hours * 3_600;

    section("Table II — telemetry channels used for validation");
    println!("  RAPS inputs : jobs (name, id, node_count, start, cpu/gpu power @15 s)");
    println!("  RAPS output : measured system power @1 s");
    println!("  Cooling in  : rack power @15 s ×25, wet-bulb @60 s");
    println!("  Cooling out : CDU flows/temps/pumps @15 s ×25, facility T @60 s,");
    println!("                pressures @30 s, flows @120 s, PUE @15 s");

    section("Fig. 5 — station registry");
    for s in STATIONS {
        println!("  {:>2}  {:<38} [{}]", s.id, s.name, s.loop_name);
    }

    section(&format!("Fig. 7 — cooling validation over {hours} h of replay"));
    let twin = SyntheticTwin::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 0x0407);
    let jobs: Vec<_> =
        generator.generate_day(0).into_iter().filter(|j| j.submit_time_s < span).collect();
    println!("  recording physical-twin telemetry ({} jobs, perturbed plant + sensor noise)...", jobs.len());
    let telemetry = twin.record_span(jobs.clone(), span, 0);

    println!("  replaying through the nominal Modelica-equivalent model...");
    let mut sim = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        15,
    );
    sim.attach_cooling(CoolingCoupling::attach(Box::new(CoolingModel::frontier()), 25).unwrap());
    sim.set_wet_bulb(telemetry.wet_bulb.clone());
    sim.submit_jobs(jobs);

    let mut pred_flow = TimeSeries::new(0.0, 15.0);
    let mut pred_temp = TimeSeries::new(0.0, 15.0);
    let mut pred_press = TimeSeries::new(0.0, 30.0);
    let mut pred_pue = TimeSeries::new(0.0, 15.0);
    let (vr_flow, vr_temp, vr_press, vr_pue) = {
        let m = sim.cooling_model().unwrap();
        (
            m.var_by_name("cdu[1].primary_flow").unwrap().vr,
            m.var_by_name("cdu[1].primary_return_temp").unwrap().vr,
            m.var_by_name("facility.htw_supply_pressure").unwrap().vr,
            m.var_by_name("pue").unwrap().vr,
        )
    };
    for sec in 0..span {
        sim.tick().expect("replay");
        let t = sec + 1;
        let m = sim.cooling_model().unwrap();
        if t % 15 == 0 {
            pred_flow.push(m.get_real(vr_flow).unwrap());
            pred_temp.push(m.get_real(vr_temp).unwrap());
            pred_pue.push(m.get_real(vr_pue).unwrap());
        }
        if t % 30 == 0 {
            pred_press.push(m.get_real(vr_press).unwrap());
        }
    }

    let skip = 1_800.0;
    println!("\n  {:<42} {:>12} {:>12} {:>9}", "panel / channel", "RMSE", "MAE", "nRMSE %");
    let panels: [(&str, &TimeSeries, &TimeSeries); 4] = [
        ("(a) cdu[1].primary_flow [m3/s]", &pred_flow, &telemetry.cooling.cdu_primary_flow[0]),
        ("(b) cdu[1].primary_return_temp [degC]", &pred_temp, &telemetry.cooling.cdu_return_temp[0]),
        ("(c) facility.htw_supply_pressure [Pa]", &pred_press, &telemetry.cooling.htw_supply_pressure),
        ("(d) pue [1]", &pred_pue, &telemetry.cooling.pue),
    ];
    for (name, predicted, measured) in &panels {
        let cmp = compare_channels(*name, predicted, measured, skip);
        println!(
            "  {name:<42} {:>12.4} {:>12.4} {:>9.2}",
            cmp.rmse,
            cmp.mae,
            cmp.nrmse_percent()
        );
    }
    let pue_cmp = compare_channels("pue", &pred_pue, &telemetry.cooling.pue, skip);
    println!(
        "\n  PUE bias {:+.2} %   (paper: \"model-predicted PUE is within 1.4 percent\")",
        pue_cmp.mean_bias_percent()
    );

    println!("\n  predicted (a) {}", spark_series(&pred_flow, 60));
    println!("  measured  (a) {}", spark_series(&telemetry.cooling.cdu_primary_flow[0], 60));
    println!("  predicted (b) {}", spark_series(&pred_temp, 60));
    println!("  measured  (b) {}", spark_series(&telemetry.cooling.cdu_return_temp[0], 60));
    println!("  predicted (d) {}", spark_series(&pred_pue, 60));
    println!("  measured  (d) {}", spark_series(&telemetry.cooling.pue, 60));
}
