//! L2 cooling backend: answer the FMI boundary from a recorded trace.
//!
//! The paper's L2 ("informative") twin incorporates telemetry for
//! real-time insight rather than simulating physics. This module makes
//! that fidelity level reachable from the coupled twin: a
//! [`ReplayCoolingModel`] implements [`CoSimModel`] with exactly the
//! variable names RAPS resolves at attach time (`cdu_heat[i]`,
//! `wet_bulb`, `it_power`, `pue`, `cooling_power`), but instead of
//! stepping a plant it samples a [`CoolingTrace`] at the current
//! simulation time. Heat and weather inputs are accepted and recorded
//! (the coupling contract) and simply do not influence the outputs —
//! the trace already *is* the measured answer.
//!
//! Traces come from two places: [`CoolingTrace::from_telemetry`] lifts a
//! recorded [`TelemetryDay`] into a trace (the telemetry-replay path of
//! Fig. 9), and [`CoolingTrace::constant`] builds the trivial
//! steady-state trace used by tests and quick studies.

use crate::generator::{SyntheticTwin, TelemetryDay};
use exadigit_raps::config::NodePowerConfig;
use exadigit_raps::job::Job;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_sim::clock::SECONDS_PER_DAY;
use exadigit_sim::fmi::{
    Causality, CoSimModel, FmiError, VarRef, VariableDescriptor, VariableRegistry,
};
use exadigit_sim::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One auxiliary recorded channel served by a [`ReplayCoolingModel`]
/// (e.g. a CDU supply temperature), exposed as a read-only local
/// variable under its recorded name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceChannel {
    /// Variable name the channel is registered under (FMI dotted style,
    /// e.g. `cdu[1].secondary_supply_temp`).
    pub name: String,
    /// Recorded values over simulated time.
    pub series: TimeSeries,
}

/// A recorded cooling trace: the measured answers a [`ReplayCoolingModel`]
/// serves across the FMI boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingTrace {
    /// Measured PUE over simulated time.
    pub pue: TimeSeries,
    /// Measured cooling auxiliary power, W, over simulated time.
    pub cooling_power_w: TimeSeries,
    /// Additional recorded channels, served verbatim by name.
    pub channels: Vec<TraceChannel>,
}

impl CoolingTrace {
    /// Trace from explicit PUE and cooling-power series.
    pub fn new(pue: TimeSeries, cooling_power_w: TimeSeries) -> Self {
        CoolingTrace { pue, cooling_power_w, channels: Vec::new() }
    }

    /// Trivial steady trace: constant PUE and cooling power over any
    /// horizon (two samples an hour apart; [`TimeSeries::sample_at`]
    /// holds the last value beyond the end).
    pub fn constant(pue: f64, cooling_power_w: f64) -> Self {
        CoolingTrace::new(
            TimeSeries::from_values(0.0, 3600.0, vec![pue, pue]),
            TimeSeries::from_values(0.0, 3600.0, vec![cooling_power_w, cooling_power_w]),
        )
    }

    /// Attach an auxiliary channel (builder style).
    pub fn with_channel(mut self, name: impl Into<String>, series: TimeSeries) -> Self {
        self.channels.push(TraceChannel { name: name.into(), series });
        self
    }

    /// Lift a recorded telemetry day into a replay trace.
    ///
    /// The PUE channel is taken verbatim (Table II records it at 15 s).
    /// Cooling power is not a Table II channel, so it is reconstructed
    /// from the PUE definition: `aux = (PUE − 1) × P_IT`, sampling the
    /// measured 1 s system power at each PUE timestamp. Per-CDU return
    /// temperatures ride along as auxiliary channels.
    pub fn from_telemetry(day: &TelemetryDay) -> Self {
        let pue = day.cooling.pue.clone();
        let mut cooling_power = TimeSeries::with_capacity(pue.t0, pue.dt, pue.len());
        for (i, p) in pue.samples().enumerate() {
            let t = pue.t0 + i as f64 * pue.dt;
            let it_w = day.measured_power_w.sample_at(t);
            cooling_power.push((p - 1.0).max(0.0) * it_w);
        }
        let mut trace = CoolingTrace::new(pue, cooling_power);
        for (i, series) in day.cooling.cdu_return_temp.iter().enumerate() {
            trace = trace
                .with_channel(format!("cdu[{}].primary_return_temp", i + 1), series.clone());
        }
        trace
    }
}

/// The L2 cooling backend: a [`CoSimModel`] that plays back a
/// [`CoolingTrace`] instead of simulating a plant.
///
/// Trace-quantum alignment holds under both advancement kernels: the
/// event-driven `run_until` treats every 15 s trace quantum as an
/// event, so `do_step` sees exactly the same `(current_time, 15 s)`
/// sequence as the per-second loop and the replayed outputs are
/// bit-identical (pinned by the `event_kernel` integration test).
///
/// The registry exposes `num_cdus` heat inputs plus `wet_bulb` and
/// `it_power` (so [`CoolingCoupling::attach`] resolves the same names it
/// would against the L4 plant), the `pue` and `cooling_power` outputs
/// served from the trace, and one local variable per auxiliary channel.
///
/// [`CoolingCoupling::attach`]: exadigit_raps::simulation::CoolingCoupling::attach
#[derive(Clone, Serialize, Deserialize)]
pub struct ReplayCoolingModel {
    /// The recorded answers; read-only during replay, so forks share it
    /// by refcount (its series already share their sealed chunks).
    trace: std::sync::Arc<CoolingTrace>,
    /// Immutable after construction; forks share it by refcount.
    vars: std::sync::Arc<Vec<VariableDescriptor>>,
    values: Vec<f64>,
    num_cdus: usize,
    /// Current simulation time the outputs are sampled at, seconds.
    time_s: f64,
}

impl ReplayCoolingModel {
    /// Replay model exposing `num_cdus` heat inputs over the given trace.
    pub fn new(trace: CoolingTrace, num_cdus: usize) -> Self {
        let mut reg = VariableRegistry::new();
        for i in 1..=num_cdus {
            reg.register(
                format!("cdu_heat[{i}]"),
                "W",
                Causality::Input,
                format!("Heat extracted into CDU {i}'s liquid loop (recorded, not simulated)"),
            );
        }
        reg.register("wet_bulb", "degC", Causality::Input, "Outdoor wet-bulb temperature");
        reg.register("it_power", "W", Causality::Input, "Total IT power (recorded, not used)");
        reg.register("pue", "1", Causality::Output, "Measured PUE from the trace");
        reg.register(
            "cooling_power",
            "W",
            Causality::Output,
            "Measured cooling auxiliary power from the trace",
        );
        for ch in &trace.channels {
            reg.register(
                ch.name.clone(),
                "1",
                Causality::Local,
                "Auxiliary recorded channel served verbatim",
            );
        }
        let values = vec![0.0; reg.len()];
        let mut model = ReplayCoolingModel {
            trace: std::sync::Arc::new(trace),
            vars: std::sync::Arc::new(reg.into_vec()),
            values,
            num_cdus,
            time_s: 0.0,
        };
        model.refresh_outputs();
        model
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &CoolingTrace {
        &self.trace
    }

    fn refresh_outputs(&mut self) {
        let t = self.time_s;
        let pue_idx = self.num_cdus + 2;
        self.values[pue_idx] = self.trace.pue.sample_at(t);
        self.values[pue_idx + 1] = self.trace.cooling_power_w.sample_at(t);
        for (k, ch) in self.trace.channels.iter().enumerate() {
            self.values[pue_idx + 2 + k] = ch.series.sample_at(t);
        }
    }
}

impl CoSimModel for ReplayCoolingModel {
    fn instance_name(&self) -> &str {
        "telemetry-replay"
    }

    fn variables(&self) -> &[VariableDescriptor] {
        &self.vars
    }

    fn setup(&mut self, start_time: f64) {
        self.time_s = start_time;
        self.refresh_outputs();
    }

    fn set_real(&mut self, vr: VarRef, value: f64) -> Result<(), FmiError> {
        let idx = vr.0 as usize;
        match self.vars.get(idx) {
            None => Err(FmiError::UnknownVariable(vr)),
            Some(v) if v.causality == Causality::Input => {
                self.values[idx] = value;
                Ok(())
            }
            Some(_) => Err(FmiError::WrongCausality { vr, expected: Causality::Input }),
        }
    }

    fn get_real(&self, vr: VarRef) -> Result<f64, FmiError> {
        self.values.get(vr.0 as usize).copied().ok_or(FmiError::UnknownVariable(vr))
    }

    fn do_step(&mut self, current_time: f64, step_size: f64) -> Result<(), FmiError> {
        if step_size <= 0.0 {
            return Err(FmiError::InvalidStep(format!("non-positive step {step_size}")));
        }
        self.time_s = current_time + step_size;
        self.refresh_outputs();
        Ok(())
    }

    fn reset(&mut self) {
        self.time_s = 0.0;
        self.values.iter_mut().for_each(|v| *v = 0.0);
        self.refresh_outputs();
    }

    fn fork(&self) -> Option<Box<dyn CoSimModel>> {
        Some(Box::new(self.clone()))
    }

    fn save_state(&self) -> Option<serde::Value> {
        Some(serde::Serialize::to_value(self))
    }
}

/// A replayable telemetry feed: the stand-in for the live stream a
/// persistent twin ingests (`docs/SERVICE.md`).
///
/// A real deployment would subscribe to the paper's §III-B streaming
/// pipeline; here the same interface is served from recorded or synthetic
/// telemetry so the service layer can be driven deterministically. The
/// feed hands out job submissions in timed batches ([`TelemetryFeed::poll`]
/// — everything submitted up to the requested second, exactly once) and
/// carries the wet-bulb forcing plus, when lifted from a recorded day, the
/// measured cooling trace for an L2 replay backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryFeed {
    /// Not-yet-delivered jobs, ascending submit time.
    jobs: VecDeque<Job>,
    /// Wet-bulb forcing over the feed's span, °C.
    wet_bulb: TimeSeries,
    /// Measured cooling channels, when the feed wraps recorded telemetry.
    cooling: Option<CoolingTrace>,
    /// Feed time: everything at or before this second has been delivered.
    delivered_through_s: u64,
    /// Total seconds of telemetry the feed carries.
    span_s: u64,
}

impl TelemetryFeed {
    /// Feed from an explicit job list and wet-bulb forcing covering
    /// `span_s` seconds. Jobs are delivered in submit order.
    pub fn new(mut jobs: Vec<Job>, wet_bulb: TimeSeries, span_s: u64) -> Self {
        jobs.sort_by_key(|j| j.submit_time_s);
        TelemetryFeed {
            jobs: jobs.into(),
            wet_bulb,
            cooling: None,
            delivered_through_s: 0,
            span_s,
        }
    }

    /// Attach a recorded cooling trace (builder style) so consumers can
    /// run an L2 replay backend against the same feed.
    pub fn with_cooling_trace(mut self, trace: CoolingTrace) -> Self {
        self.cooling = Some(trace);
        self
    }

    /// Lift one recorded telemetry day into a feed: job records become
    /// replayable jobs (trace-level utilization via `power` inversion),
    /// the measured wet-bulb rides along as forcing, and the measured
    /// cooling channels become the feed's [`CoolingTrace`]. The span is
    /// whatever the recording covered (the 1 s measured-power channel's
    /// length), so `record_span` slices shorter than a day are honest.
    pub fn from_day(day: &TelemetryDay, power: &NodePowerConfig) -> Self {
        let jobs: Vec<Job> = day.jobs.iter().map(|rec| rec.to_job(power)).collect();
        let span_s = day.measured_power_w.len() as u64;
        TelemetryFeed::new(jobs, day.wet_bulb.clone(), span_s)
            .with_cooling_trace(CoolingTrace::from_telemetry(day))
    }

    /// A synthetic multi-day feed: the default workload model's job stream
    /// over `days` days plus the synthetic twin's diurnal wet-bulb
    /// profile, all derived deterministically from `seed`. This is the
    /// cheap stand-in `examples/twin_service.rs` and the service tests
    /// ingest — no physical-twin recording pass required.
    pub fn synthetic(seed: u64, days: u64) -> Self {
        let mut gen = WorkloadGenerator::new(WorkloadParams::default(), seed);
        let jobs = gen.generate_span(days.max(1));
        let twin = SyntheticTwin::frontier();
        // Concatenate per-day wet-bulb profiles (60 s cadence) into one
        // span-long forcing; drop each day's duplicated midnight sample.
        let mut wet_bulb = TimeSeries::with_capacity(0.0, 60.0, (days.max(1) * 1440 + 1) as usize);
        for day in 0..days.max(1) {
            let profile = twin.wet_bulb_day(day);
            let take = if day + 1 == days.max(1) { profile.len() } else { 1440 };
            for v in profile.samples().take(take) {
                wet_bulb.push(v);
            }
        }
        TelemetryFeed::new(jobs, wet_bulb, days.max(1) * SECONDS_PER_DAY)
    }

    /// Deliver every job submitted at or before `until_s` that has not
    /// been delivered yet. Monotone: the feed never rewinds, and each job
    /// is handed out exactly once.
    pub fn poll(&mut self, until_s: u64) -> Vec<Job> {
        let mut out = Vec::new();
        while let Some(front) = self.jobs.front() {
            if front.submit_time_s <= until_s {
                out.push(self.jobs.pop_front().expect("peeked"));
            } else {
                break;
            }
        }
        self.delivered_through_s = self.delivered_through_s.max(until_s);
        out
    }

    /// The wet-bulb forcing over the feed's span.
    pub fn wet_bulb(&self) -> &TimeSeries {
        &self.wet_bulb
    }

    /// The measured cooling trace, when the feed wraps recorded telemetry.
    pub fn cooling_trace(&self) -> Option<&CoolingTrace> {
        self.cooling.as_ref()
    }

    /// Jobs not yet delivered.
    pub fn pending_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Submit second of the next undelivered job.
    pub fn next_submit_s(&self) -> Option<u64> {
        self.jobs.front().map(|j| j.submit_time_s)
    }

    /// Feed time: everything at or before this second has been delivered.
    pub fn delivered_through_s(&self) -> u64 {
        self.delivered_through_s
    }

    /// Total seconds of telemetry the feed carries.
    pub fn span_s(&self) -> u64 {
        self.span_s
    }

    /// True once every job has been delivered and the feed time has
    /// reached the end of the span.
    pub fn exhausted(&self) -> bool {
        self.jobs.is_empty() && self.delivered_through_s >= self.span_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> CoolingTrace {
        // PUE ramps 1.05 → 1.15 over four 15 s samples.
        CoolingTrace::new(
            TimeSeries::from_values(0.0, 15.0, vec![1.05, 1.08, 1.12, 1.15]),
            TimeSeries::from_values(0.0, 15.0, vec![4.0e5, 4.5e5, 5.0e5, 5.5e5]),
        )
    }

    #[test]
    fn exposes_the_coupling_contract_names() {
        let m = ReplayCoolingModel::new(ramp_trace(), 25);
        for i in 1..=25 {
            assert!(m.var_by_name(&format!("cdu_heat[{i}]")).is_some());
        }
        assert!(m.var_by_name("wet_bulb").is_some());
        assert!(m.var_by_name("it_power").is_some());
        assert!(m.var_by_name("pue").is_some());
        assert!(m.var_by_name("cooling_power").is_some());
    }

    #[test]
    fn outputs_track_the_trace_over_time() {
        let mut m = ReplayCoolingModel::new(ramp_trace(), 2);
        m.setup(0.0);
        let pue_vr = m.var_by_name("pue").unwrap().vr;
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.05);
        m.do_step(0.0, 15.0).unwrap();
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.08);
        m.do_step(15.0, 15.0).unwrap();
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.12);
        // Beyond the end of the trace the last sample holds.
        m.do_step(30.0, 3600.0).unwrap();
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.15);
    }

    #[test]
    fn inputs_accepted_but_do_not_change_outputs() {
        let mut m = ReplayCoolingModel::new(ramp_trace(), 2);
        m.setup(0.0);
        m.set_real(VarRef(0), 1.0e6).unwrap();
        m.set_real(m.var_by_name("wet_bulb").unwrap().vr, 30.0).unwrap();
        m.do_step(0.0, 15.0).unwrap();
        let pue = m.get_real(m.var_by_name("pue").unwrap().vr).unwrap();
        assert_eq!(pue, 1.08, "replay outputs come from the trace alone");
    }

    #[test]
    fn auxiliary_channels_served_by_name() {
        let trace = ramp_trace()
            .with_channel("cdu[1].primary_return_temp", TimeSeries::from_values(0.0, 15.0, vec![30.0, 31.0]));
        let mut m = ReplayCoolingModel::new(trace, 1);
        m.setup(0.0);
        let vr = m.var_by_name("cdu[1].primary_return_temp").unwrap().vr;
        assert_eq!(m.get_real(vr).unwrap(), 30.0);
        m.do_step(0.0, 15.0).unwrap();
        assert_eq!(m.get_real(vr).unwrap(), 31.0);
    }

    #[test]
    fn wrong_causality_and_unknown_vr_rejected() {
        let mut m = ReplayCoolingModel::new(ramp_trace(), 1);
        let pue_vr = m.var_by_name("pue").unwrap().vr;
        assert!(matches!(
            m.set_real(pue_vr, 1.0),
            Err(FmiError::WrongCausality { .. })
        ));
        assert!(matches!(m.get_real(VarRef(999)), Err(FmiError::UnknownVariable(_))));
        assert!(m.do_step(0.0, 0.0).is_err());
    }

    #[test]
    fn constant_trace_holds_forever() {
        let mut m = ReplayCoolingModel::new(CoolingTrace::constant(1.07, 6.0e5), 3);
        m.setup(0.0);
        for k in 0..10 {
            m.do_step(k as f64 * 900.0, 900.0).unwrap();
        }
        assert_eq!(m.get_real(m.var_by_name("pue").unwrap().vr).unwrap(), 1.07);
        assert_eq!(m.get_real(m.var_by_name("cooling_power").unwrap().vr).unwrap(), 6.0e5);
    }

    #[test]
    fn trace_serialises_round_trip() {
        let trace = ramp_trace().with_channel("x", TimeSeries::from_values(0.0, 1.0, vec![2.0]));
        let json = serde_json::to_string(&trace).unwrap();
        let back: CoolingTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn feed_delivers_jobs_once_in_submit_order() {
        let jobs = vec![
            Job::new(3, "c", 8, 60, 300, 0.5, 0.5),
            Job::new(1, "a", 8, 60, 10, 0.5, 0.5),
            Job::new(2, "b", 8, 60, 120, 0.5, 0.5),
        ];
        let wb = TimeSeries::from_values(0.0, 3600.0, vec![15.0, 15.0]);
        let mut feed = TelemetryFeed::new(jobs, wb, 3600);
        assert_eq!(feed.pending_jobs(), 3);
        assert_eq!(feed.next_submit_s(), Some(10));
        let first = feed.poll(120);
        assert_eq!(first.iter().map(|j| j.id.0).collect::<Vec<_>>(), vec![1, 2]);
        assert!(feed.poll(120).is_empty(), "polling the same window re-delivers nothing");
        let rest = feed.poll(3600);
        assert_eq!(rest.len(), 1);
        assert!(feed.exhausted());
    }

    #[test]
    fn synthetic_feed_is_deterministic_and_spans_days() {
        let a = TelemetryFeed::synthetic(42, 2);
        let b = TelemetryFeed::synthetic(42, 2);
        assert_eq!(a.pending_jobs(), b.pending_jobs());
        assert_eq!(a.wet_bulb().to_vec(), b.wet_bulb().to_vec());
        assert_eq!(a.span_s(), 2 * SECONDS_PER_DAY);
        // The forcing covers the whole span at 60 s cadence.
        assert!(a.wet_bulb().end_time().unwrap() >= (2 * SECONDS_PER_DAY) as f64 - 60.0);
        assert!(a.pending_jobs() > 100, "a synthetic day has hundreds of jobs");
        // Jobs fall inside the span.
        let mut feed = a.clone();
        let jobs = feed.poll(2 * SECONDS_PER_DAY);
        assert!(jobs.iter().all(|j| j.submit_time_s < 2 * SECONDS_PER_DAY));
        assert!(feed.exhausted());
    }

    #[test]
    fn feed_from_day_carries_cooling_trace() {
        use exadigit_raps::job::Job;
        let twin = crate::generator::SyntheticTwin::frontier();
        let day = twin.record_span(vec![Job::new(1, "j", 64, 120, 5, 0.5, 0.5)], 120, 0);
        let feed = TelemetryFeed::from_day(&day, &twin.nominal_system.node_power);
        assert!(feed.cooling_trace().is_some());
        assert_eq!(feed.pending_jobs(), day.jobs.len());
        // The span is what the recording covered, not a hardcoded day.
        assert_eq!(feed.span_s(), 120);
        let mut feed = feed;
        feed.poll(120);
        assert!(feed.exhausted());
    }

    #[test]
    fn from_telemetry_reconstructs_cooling_power() {
        use exadigit_raps::job::Job;
        let twin = crate::generator::SyntheticTwin::frontier();
        let day = twin.record_span(vec![Job::new(1, "j", 64, 120, 5, 0.5, 0.5)], 120, 0);
        let trace = CoolingTrace::from_telemetry(&day);
        assert_eq!(trace.pue, day.cooling.pue);
        assert_eq!(trace.cooling_power_w.len(), trace.pue.len());
        // aux = (PUE − 1) × P_IT must be positive for a loaded plant.
        assert!(trace.cooling_power_w.samples().all(|w| w >= 0.0));
        // Per-CDU return temps ride along.
        assert!(trace.channels.iter().any(|c| c.name == "cdu[1].primary_return_temp"));
    }
}
