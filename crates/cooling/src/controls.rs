//! The plant control system (§III-C5 of the paper).
//!
//! Three loop controllers, quoted from the paper:
//!
//! * **CDU-rack loop** — "A PID controller is used to regulate the CDU
//!   relative percent pump speeds based on the loop differential pressure,
//!   and a control valve is used to regulate the primary coolant flow
//!   based on a set secondary supply temperature."
//! * **Primary pump loop** — "A PID controller is used to regulate the
//!   four HTWPs. The HTWPs are staged up/down depending on the relative
//!   percent pump speeds of the running pumps. The intermediate heat
//!   exchangers (EHXs) are staged based on the number of CTs in operation."
//! * **Cooling tower loop** — "The CTWP speed is regulated based on the CT
//!   supply header pressure ... the CTs are staged up/down based on header
//!   pressure and the gradient of the hot temperature water supply (HTWS)
//!   temperature", with the loop-to-loop nonlinearity handled "via a delay
//!   transfer function".

use crate::plant::PlantState;
use crate::spec::PlantSpec;
use exadigit_thermo::pid::Pid;
use exadigit_thermo::staging::{FirstOrderLag, HysteresisStager, RateEstimator};

/// Commands computed by one control-system update.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlCommands {
    /// Per-CDU primary valve opening.
    pub cdu_valve_opening: Vec<f64>,
    /// Per-CDU pump relative speed.
    pub cdu_pump_speed: Vec<f64>,
    /// Shared speed of the staged HTWPs.
    pub htwp_speed: f64,
    /// HTWPs staged on.
    pub htwp_staged: u32,
    /// Shared speed of the staged CTWPs.
    pub ctwp_speed: f64,
    /// CTWPs staged on.
    pub ctwp_staged: u32,
    /// EHX units staged (follows tower staging per the paper).
    pub ehx_staged: u32,
    /// Shared tower fan speed.
    pub fan_speed: f64,
    /// Tower cells staged.
    pub cells_staged: u32,
}

/// The assembled controllers and staging state machines.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct PlantControls {
    cdu_valve_pids: Vec<Pid>,
    cdu_pump_pids: Vec<Pid>,
    htwp_pid: Pid,
    htwp_stager: HysteresisStager,
    ctwp_pid: Pid,
    ctwp_stager: HysteresisStager,
    fan_pid: Pid,
    cell_stager: HysteresisStager,
    /// The "delay transfer function" between loops.
    htws_lag: FirstOrderLag,
    htws_rate: RateEstimator,
    /// Differential-pressure setpoint of the CDU secondary loop, Pa.
    cdu_dp_setpoint_pa: f64,
    k_cdu_secondary: f64,
}

impl PlantControls {
    /// Controllers with gains tuned for the spec's operating point. "Most
    /// of the PID parameters have been taken from the physical controller
    /// where available, and tuned using telemetry data where parameters
    /// were not available" — here they are tuned against the synthetic
    /// plant's step responses.
    pub fn new(spec: &PlantSpec) -> Self {
        let n = spec.num_cdus;
        let rho_g = 998.0 * 9.806_65;
        let q_sec = spec.cdu.secondary_design_flow_m3s;
        let k_sec = spec.cdu.secondary_design_head_m * rho_g / (q_sec * q_sec);
        // Run the secondary loop slightly below design flow.
        let dp_setpoint = 0.8 * spec.cdu.secondary_design_head_m * rho_g;

        // Gain selection: each loop's static gain G (output change per unit
        // actuator change) is estimated from the plant sizing, and kp/ki
        // are set for a per-step loop gain of ~0.2 at the 15 s cadence —
        // stable with the one-step measurement delay of the co-simulation.
        let cdu_valve_pids = (0..n)
            .map(|_| {
                // G ≈ 6 K of supply temperature per unit valve opening.
                let mut pid = Pid::new(0.04, 8.0e-4, 0.0, 0.05, 1.0)
                    .with_setpoint(spec.cdu.supply_setpoint_c)
                    .reverse();
                pid.initialize_output(0.7);
                pid
            })
            .collect();
        let cdu_pump_pids = (0..n)
            .map(|_| {
                // G ≈ 330 kPa of loop ΔP per unit pump speed.
                let mut pid =
                    Pid::new(7.5e-7, 1.0e-8, 0.0, 0.30, 1.0).with_setpoint(dp_setpoint);
                pid.initialize_output(0.9);
                pid
            })
            .collect();

        // G ≈ 400-600 kPa of header pressure per unit pump speed.
        let mut htwp_pid =
            Pid::new(5.0e-7, 7.0e-9, 0.0, 0.35, 1.0).with_setpoint(spec.primary_pressure_setpoint_pa);
        htwp_pid.initialize_output(0.85);
        let mut ctwp_pid =
            Pid::new(5.0e-7, 7.0e-9, 0.0, 0.35, 1.0).with_setpoint(spec.tower_pressure_setpoint_pa);
        ctwp_pid.initialize_output(0.85);
        // G ≈ 5 K of basin temperature per unit fan speed, with the basin's
        // own thermal lag on top.
        let mut fan_pid = Pid::new(0.06, 1.5e-3, 0.0, 0.0, 1.0)
            .with_setpoint(spec.towers.basin_setpoint_c)
            .reverse();
        fan_pid.initialize_output(0.6);

        PlantControls {
            cdu_valve_pids,
            cdu_pump_pids,
            htwp_pid,
            htwp_stager: HysteresisStager::new(
                0.93,
                0.45,
                120.0,
                300.0,
                spec.primary_pumps.min_staged,
                spec.primary_pumps.count as u32,
                spec.primary_pumps.initial_staged,
            ),
            ctwp_pid,
            ctwp_stager: HysteresisStager::new(
                0.93,
                0.45,
                120.0,
                300.0,
                spec.tower_pumps.min_staged,
                spec.tower_pumps.count as u32,
                spec.tower_pumps.initial_staged,
            ),
            fan_pid,
            cell_stager: HysteresisStager::new(
                0.88,
                0.30,
                180.0,
                420.0,
                spec.towers.min_staged,
                spec.towers.cells as u32,
                spec.towers.initial_staged,
            ),
            htws_lag: FirstOrderLag::new(240.0, spec.cdu.supply_setpoint_c - 3.0),
            htws_rate: RateEstimator::new(180.0),
            cdu_dp_setpoint_pa: dp_setpoint,
            k_cdu_secondary: k_sec,
        }
    }

    /// The CDU differential-pressure setpoint, Pa (diagnostics).
    pub fn cdu_dp_setpoint_pa(&self) -> f64 {
        self.cdu_dp_setpoint_pa
    }

    /// One control-system update over a `dt_s` interval.
    pub fn update(&mut self, state: &PlantState, spec: &PlantSpec, dt_s: f64) -> ControlCommands {
        let n = spec.num_cdus;
        let mut cdu_valve_opening = Vec::with_capacity(n);
        let mut cdu_pump_speed = Vec::with_capacity(n);
        for i in 0..n {
            // Valve holds the secondary supply temperature setpoint.
            let t_meas = state.cdus[i].secondary_supply_temp_c;
            cdu_valve_opening.push(self.cdu_valve_pids[i].update(t_meas, dt_s));
            // Pump holds the loop differential pressure (ΔP = k·Q²).
            let q = state.cdus[i].secondary_flow_m3s;
            let dp_meas = self.k_cdu_secondary * q * q;
            cdu_pump_speed.push(self.cdu_pump_pids[i].update(dp_meas, dt_s));
        }

        // Primary loop: speed PID on the supply header pressure; staging on
        // the relative speed of the running pumps.
        let htwp_speed = self.htwp_pid.update(state.primary_supply_pressure_pa, dt_s);
        let htwp_staged = self.htwp_stager.update(htwp_speed, dt_s);

        // Tower loop: CTWP speed PID on the CT supply header pressure.
        let ctwp_speed = self.ctwp_pid.update(state.tower_header_pressure_pa, dt_s);
        let ctwp_staged = self.ctwp_stager.update(ctwp_speed, dt_s);

        // Fans hold the basin temperature.
        let fan_speed = self.fan_pid.update(state.basin_temp_c, dt_s);

        // Tower cell staging: fan effort plus the *lagged* HTWS temperature
        // deviation and gradient — the delay transfer function of §III-C5.
        let htws_lagged = self.htws_lag.update(state.htws_temp_c, dt_s);
        let htws_grad = self.htws_rate.update(state.htws_temp_c, dt_s);
        let htws_target = spec.cdu.supply_setpoint_c - 2.0;
        let dev = ((htws_lagged - htws_target) / 4.0).clamp(-0.5, 0.5);
        let grad = (htws_grad * 600.0).clamp(-0.3, 0.3);
        let staging_signal = (fan_speed + 0.35 * dev + 0.25 * grad).clamp(0.0, 1.5);
        let cells_staged = self.cell_stager.update(staging_signal, dt_s);

        // EHXs follow tower staging (paper: "staged based on the number of
        // CTs in operation").
        let ehx_staged = ((cells_staged as f64 / spec.towers.cells as f64
            * spec.ehx.count as f64)
            .ceil() as u32)
            .clamp(1, spec.ehx.count as u32);

        ControlCommands {
            cdu_valve_opening,
            cdu_pump_speed,
            htwp_speed,
            htwp_staged,
            ctwp_speed,
            ctwp_staged,
            ehx_staged,
            fan_speed,
            cells_staged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::{CduState, PlantState};

    fn state_with(supply_t: f64, basin_t: f64, p_prim: f64, p_ct: f64) -> PlantState {
        let mut s = PlantState {
            cdus: vec![CduState::default(); 25],
            htwp_power_w: vec![0.0; 4],
            ctwp_power_w: vec![0.0; 4],
            fan_power_w: vec![0.0; 20],
            primary_supply_pressure_pa: p_prim,
            tower_header_pressure_pa: p_ct,
            basin_temp_c: basin_t,
            htws_temp_c: 29.0,
            ..Default::default()
        };
        for cdu in &mut s.cdus {
            cdu.secondary_supply_temp_c = supply_t;
            cdu.secondary_flow_m3s = 0.03;
        }
        s
    }

    #[test]
    fn hot_secondary_opens_valves() {
        let spec = PlantSpec::frontier();
        let mut c = PlantControls::new(&spec);
        let cold = c.update(&state_with(30.0, 24.0, 260_000.0, 200_000.0), &spec, 15.0);
        let mut c2 = PlantControls::new(&spec);
        let hot = c2.update(&state_with(35.0, 24.0, 260_000.0, 200_000.0), &spec, 15.0);
        assert!(hot.cdu_valve_opening[0] > cold.cdu_valve_opening[0]);
    }

    #[test]
    fn low_pressure_speeds_up_pumps() {
        let spec = PlantSpec::frontier();
        let mut c = PlantControls::new(&spec);
        let low = c.update(&state_with(32.0, 24.0, 150_000.0, 120_000.0), &spec, 15.0);
        let mut c2 = PlantControls::new(&spec);
        let high = c2.update(&state_with(32.0, 24.0, 350_000.0, 280_000.0), &spec, 15.0);
        assert!(low.htwp_speed > high.htwp_speed);
        assert!(low.ctwp_speed > high.ctwp_speed);
    }

    #[test]
    fn warm_basin_raises_fan_speed() {
        let spec = PlantSpec::frontier();
        let mut c = PlantControls::new(&spec);
        let cool = c.update(&state_with(32.0, 20.0, 260_000.0, 200_000.0), &spec, 15.0);
        let mut c2 = PlantControls::new(&spec);
        let warm = c2.update(&state_with(32.0, 29.0, 260_000.0, 200_000.0), &spec, 15.0);
        assert!(warm.fan_speed > cool.fan_speed);
    }

    #[test]
    fn sustained_high_speed_stages_up_pumps() {
        let spec = PlantSpec::frontier();
        let mut c = PlantControls::new(&spec);
        let state = state_with(32.0, 24.0, 120_000.0, 90_000.0); // starved
        let mut staged = 0;
        for _ in 0..60 {
            let cmd = c.update(&state, &spec, 15.0);
            staged = cmd.htwp_staged;
        }
        assert!(staged > spec.primary_pumps.initial_staged, "staged={staged}");
    }

    #[test]
    fn ehx_staging_follows_cells() {
        let spec = PlantSpec::frontier();
        let mut c = PlantControls::new(&spec);
        // Freeze: whatever cells the stager reports, EHX = ceil share.
        let cmd = c.update(&state_with(32.0, 24.0, 260_000.0, 200_000.0), &spec, 15.0);
        let expect =
            ((cmd.cells_staged as f64 / 20.0 * 5.0).ceil() as u32).clamp(1, 5);
        assert_eq!(cmd.ehx_staged, expect);
    }

    #[test]
    fn commands_within_actuator_limits() {
        let spec = PlantSpec::frontier();
        let mut c = PlantControls::new(&spec);
        for t in [10.0, 25.0, 32.0, 45.0, 60.0] {
            let cmd = c.update(&state_with(t, t - 8.0, 1e5, 1e5), &spec, 15.0);
            for &v in &cmd.cdu_valve_opening {
                assert!((0.05..=1.0).contains(&v));
            }
            for &s in &cmd.cdu_pump_speed {
                assert!((0.30..=1.0).contains(&s));
            }
            assert!((0.0..=1.0).contains(&cmd.fan_speed));
            assert!(cmd.htwp_staged >= 1 && cmd.htwp_staged <= 4);
            assert!(cmd.cells_staged >= 2 && cmd.cells_staged <= 20);
        }
    }
}
