//! The serving tier: a bounded worker-pool request scheduler.
//!
//! [`TwinServer`] used to spawn one detached thread per connection —
//! fine for a loopback demo, unbounded (and unjoinable) under real
//! traffic. This module replaces it with three fixed thread sets wired
//! by a bounded queue:
//!
//! ```text
//! acceptor ──▶ readers (non-blocking socket mux, parse, admission)
//!                 │ bounded RequestQueue (depth-limited; full ⇒ Busy)
//!                 ▼
//!              workers (TwinService::handle) ──▶ seq-ordered writes
//! ```
//!
//! **Admission control** happens in the readers, before any work is
//! queued: a connection over its in-flight cap, or a full request
//! queue, is answered [`Response::Busy`] with a back-off hint instead
//! of queueing unboundedly — over-capacity load degrades into explicit
//! retry pressure, never into memory growth or thread spawn.
//!
//! **Ordering**: workers finish out of order, but responses on one
//! connection must come back in request order (the NDJSON protocol has
//! no request ids). Each connection carries a sequence counter and a
//! reorder buffer; completions park until their turn on the wire.
//!
//! **Shutdown is a drain**, not an abandonment: the acceptor stops,
//! readers stop admitting and are joined, the queue is closed, workers
//! finish every admitted request and are joined. When
//! [`ServerHandle::shutdown`] returns, no thread that could touch the
//! [`TwinService`] exists — the old detached-handler race (shutdown
//! returning while a handler mid-`Advance` still mutates the live
//! twin) is gone at the architectural level.

use crate::metrics::{request_kind, ServiceObs, REQUEST_KINDS};
use crate::protocol::{Request, Response, MAX_LINE_BYTES};
use crate::server::TwinService;
use exadigit_obs::{HttpExporter, Stage, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-tier tuning knobs (see `docs/SERVICE.md` § "Serving tier").
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests — the only threads that touch
    /// the [`TwinService`], so this bounds service concurrency.
    pub workers: usize,
    /// Reader threads multiplexing connection sockets (each owns a
    /// share of the connections; non-blocking reads, so hundreds of
    /// idle connections cost no threads).
    pub readers: usize,
    /// Bounded request-queue depth; a full queue answers
    /// [`Response::Busy`].
    pub queue_depth: usize,
    /// Per-connection in-flight cap (fairness): one pipelining client
    /// cannot occupy every worker and queue slot.
    pub max_inflight_per_client: usize,
    /// Back-off hint carried by [`Response::Busy`], milliseconds.
    pub retry_after_ms: u64,
    /// How long a reader sleeps when every socket it owns is idle.
    /// Shorter naps shave admission latency at the cost of idle CPU;
    /// the productive/wasted wakeup counters
    /// (`exadigit_reader_wakeups_total`) show which way to tune it.
    pub reader_nap: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            readers: 2,
            queue_depth: 128,
            max_inflight_per_client: 2,
            retry_after_ms: 20,
            reader_nap: Duration::from_micros(250),
        }
    }
}

/// One admitted request, waiting for (or held by) a worker.
struct Ticket {
    conn: Arc<ConnShared>,
    seq: u64,
    request: Request,
    /// Admission instant; queue wait = pop time − this.
    admitted_at: Instant,
}

/// The bounded MPMC request queue between readers and workers.
struct RequestQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    depth: usize,
    /// `exadigit_queue_depth`, updated under the queue mutex so the
    /// gauge and the queue can't disagree.
    depth_gauge: exadigit_obs::Gauge,
}

struct QueueState {
    tickets: VecDeque<Ticket>,
    closed: bool,
}

impl RequestQueue {
    fn new(depth: usize, depth_gauge: exadigit_obs::Gauge) -> Self {
        RequestQueue {
            state: Mutex::new(QueueState { tickets: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            depth: depth.max(1),
            depth_gauge,
        }
    }

    /// Admit a ticket, or hand it back (`Some`) when the queue is
    /// full/closed — the caller answers `Busy` / shutting-down.
    fn try_push(&self, ticket: Ticket) -> Option<Ticket> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.tickets.len() >= self.depth {
            return Some(ticket);
        }
        state.tickets.push_back(ticket);
        self.depth_gauge.set(state.tickets.len() as f64);
        drop(state);
        self.ready.notify_one();
        None
    }

    /// Block for the next ticket; `None` once closed *and* drained, so
    /// workers finish every admitted request before exiting.
    fn pop(&self) -> Option<Ticket> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(ticket) = state.tickets.pop_front() {
                self.depth_gauge.set(state.tickets.len() as f64);
                return Some(ticket);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Bound on consecutive `WouldBlock` write stalls (~2 s at 200 µs
/// naps): a client that stops reading cannot park a worker forever.
const WRITE_STALL_LIMIT: u32 = 10_000;

/// Write one JSON line to a non-blocking socket, napping briefly on a
/// full send buffer.
fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut line = serde_json::to_string(response)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        .into_bytes();
    line.push(b'\n');
    let mut written = 0;
    let mut stalls = 0u32;
    while written < line.len() {
        match stream.write(&line[written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                written += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                stalls += 1;
                if stalls > WRITE_STALL_LIMIT {
                    return Err(io::ErrorKind::TimedOut.into());
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The write half of a connection plus its response-ordering state,
/// shared between the owning reader and the workers.
struct ConnShared {
    write: Mutex<WriteState>,
    /// Admitted-but-unanswered requests on this connection (the
    /// fairness cap meters this).
    inflight: AtomicUsize,
    /// Server-assigned connection id, labelling this connection's
    /// events in the request trace.
    id: u64,
}

struct WriteState {
    stream: TcpStream,
    /// Sequence number owed to the client next.
    next_to_write: u64,
    /// Out-of-order completions parked until their turn.
    parked: BTreeMap<u64, Response>,
    /// Set on a write failure; later responses are dropped silently.
    dead: bool,
}

impl ConnShared {
    /// Complete request `seq`: park its response, then flush every
    /// parked response whose turn has come. Workers finish out of
    /// order; the wire stays strictly request-ordered.
    fn complete(&self, seq: u64, response: Response) {
        let mut w = self.write.lock().unwrap();
        w.parked.insert(seq, response);
        while let Some(response) = {
            let due = w.next_to_write;
            w.parked.remove(&due)
        } {
            if !w.dead && write_response(&mut w.stream, &response).is_err() {
                w.dead = true;
            }
            w.next_to_write += 1;
        }
    }
}

/// The read half of a connection, owned by exactly one reader thread.
struct Connection {
    stream: TcpStream,
    buf: Vec<u8>,
    next_seq: u64,
    shared: Arc<ConnShared>,
}

enum Pump {
    /// Nothing readable right now.
    Idle,
    /// Made progress (bytes read / requests admitted).
    Progress,
    /// EOF, error, flood, or a shutdown request: drop the read half.
    Closed,
}

/// Everything a reader needs besides its own connection list.
struct ReaderCtx {
    queue: Arc<RequestQueue>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
    addr: SocketAddr,
    obs: Arc<ServiceObs>,
}

/// Drain readable bytes from one connection and admit complete lines.
fn pump_connection(conn: &mut Connection, ctx: &ReaderCtx) -> Pump {
    let mut progressed = false;
    let mut tmp = [0u8; 4096];
    let closed = loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => break true,
            Ok(n) => {
                conn.buf.extend_from_slice(&tmp[..n]);
                progressed = true;
                if conn.buf.len() > MAX_LINE_BYTES {
                    // Newline-free flood: same cap as the blocking
                    // reader — drop the connection, never grow forever.
                    break true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break true,
        }
    };
    while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.buf.drain(..=pos).collect();
        progressed = true;
        if process_line(conn, &line[..line.len() - 1], ctx) {
            return Pump::Closed;
        }
    }
    if closed {
        Pump::Closed
    } else if progressed {
        Pump::Progress
    } else {
        Pump::Idle
    }
}

/// Parse one request line and run admission control. Returns true when
/// the connection should close (shutdown observed on this line).
fn process_line(conn: &mut Connection, line: &[u8], ctx: &ReaderCtx) -> bool {
    let text = String::from_utf8_lossy(line);
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return false;
    }
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let request: Request = match serde_json::from_str(trimmed) {
        Ok(request) => request,
        Err(e) => {
            conn.shared
                .complete(seq, Response::Error { message: format!("malformed request: {e}") });
            return false;
        }
    };
    // Shutdown is answered inline (no worker needed) and starts the
    // drain: flag the tier, wake the acceptor, close this connection.
    if matches!(request, Request::Shutdown) {
        conn.shared.complete(seq, Response::ShuttingDown);
        ctx.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(ctx.addr);
        return true;
    }
    // A request racing a shutdown from another connection is refused:
    // admitted requests finish, new ones do not start.
    if ctx.shutdown.load(Ordering::SeqCst) {
        conn.shared
            .complete(seq, Response::Error { message: "server is shutting down".into() });
        return true;
    }
    // Admission control. Fairness first: a connection over its
    // in-flight cap is refused before it can contend for queue slots.
    let kind = REQUEST_KINDS[request_kind(&request)];
    let trace_stage = |stage: Stage| {
        if ctx.obs.on() {
            ctx.obs.trace.push(TraceEvent {
                at_us: ctx.obs.trace.now_us(),
                conn: conn.shared.id,
                seq,
                request: kind,
                stage,
                stage_us: 0,
            });
        }
    };
    let busy = Response::Busy { retry_after_ms: ctx.config.retry_after_ms };
    if conn.shared.inflight.load(Ordering::SeqCst) >= ctx.config.max_inflight_per_client {
        if ctx.obs.on() {
            ctx.obs.busy_inflight.inc();
        }
        trace_stage(Stage::Rejected);
        conn.shared.complete(seq, busy);
        return false;
    }
    conn.shared.inflight.fetch_add(1, Ordering::SeqCst);
    trace_stage(Stage::Admitted);
    let ticket =
        Ticket { conn: Arc::clone(&conn.shared), seq, request, admitted_at: Instant::now() };
    if ctx.queue.try_push(ticket).is_some() {
        // Queue full (or closing): back the client off instead of
        // queueing unboundedly.
        if ctx.obs.on() {
            ctx.obs.busy_queue_full.inc();
        }
        trace_stage(Stage::Rejected);
        conn.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        conn.shared.complete(seq, busy);
    }
    false
}

/// One reader: multiplex a share of the connections with non-blocking
/// reads, napping only when every socket is idle.
fn reader_loop(incoming: mpsc::Receiver<Connection>, ctx: ReaderCtx) {
    let mut conns: Vec<Connection> = Vec::new();
    loop {
        while let Ok(conn) = incoming.try_recv() {
            conns.push(conn);
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            // Stop admitting; already-admitted tickets drain through
            // the workers (they hold the write halves they need).
            return;
        }
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match pump_connection(&mut conns[i], &ctx) {
                Pump::Idle => i += 1,
                Pump::Progress => {
                    progressed = true;
                    i += 1;
                }
                Pump::Closed => {
                    conns.swap_remove(i);
                }
            }
        }
        if ctx.obs.on() {
            if progressed {
                ctx.obs.wakeups_productive.inc();
            } else {
                ctx.obs.wakeups_wasted.inc();
            }
        }
        if !progressed {
            std::thread::sleep(ctx.config.reader_nap);
        }
    }
}

/// One worker: execute admitted requests against the service, feeding
/// the queue-wait histogram, the lifecycle trace, and the slow-query
/// log along the way.
fn worker_loop(queue: Arc<RequestQueue>, service: Arc<TwinService>) {
    let obs = Arc::clone(service.obs());
    while let Some(ticket) = queue.pop() {
        let on = obs.on();
        let kind = REQUEST_KINDS[request_kind(&ticket.request)];
        let queue_wait = ticket.admitted_at.elapsed();
        if on {
            obs.queue_wait_seconds.observe_duration(queue_wait);
            obs.trace.push(TraceEvent {
                at_us: obs.trace.now_us(),
                conn: ticket.conn.id,
                seq: ticket.seq,
                request: kind,
                stage: Stage::Executing,
                stage_us: queue_wait.as_micros() as u64,
            });
        }
        let started = Instant::now();
        let response = service.handle(&ticket.request);
        let handled = started.elapsed();
        if on {
            obs.trace.push(TraceEvent {
                at_us: obs.trace.now_us(),
                conn: ticket.conn.id,
                seq: ticket.seq,
                request: kind,
                stage: Stage::Written,
                stage_us: handled.as_micros() as u64,
            });
            let logged = obs.slowlog.record(
                kind,
                || crate::metrics::request_detail(&ticket.request),
                queue_wait.as_micros() as u64,
                handled.as_micros() as u64,
            );
            if logged {
                obs.slow_queries_total.inc();
            }
        }
        ticket.conn.complete(ticket.seq, response);
        ticket.conn.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Accept connections and deal them round-robin to the readers; on
/// shutdown, drain and join the whole tier.
fn supervise(
    listener: TcpListener,
    service: Arc<TwinService>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let obs = Arc::clone(service.obs());
    let queue = Arc::new(RequestQueue::new(config.queue_depth, obs.queue_depth.clone()));
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            std::thread::spawn(move || worker_loop(queue, service))
        })
        .collect();
    let mut senders = Vec::new();
    let readers: Vec<JoinHandle<()>> = (0..config.readers.max(1))
        .map(|_| {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            let ctx = ReaderCtx {
                queue: Arc::clone(&queue),
                shutdown: Arc::clone(&shutdown),
                config: config.clone(),
                addr,
                obs: Arc::clone(&obs),
            };
            std::thread::spawn(move || reader_loop(rx, ctx))
        })
        .collect();

    let mut next_reader = 0usize;
    let mut next_conn_id = 0u64;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let Ok(write_half) = stream.try_clone() else { continue };
        next_conn_id += 1;
        let conn = Connection {
            stream,
            buf: Vec::new(),
            next_seq: 0,
            shared: Arc::new(ConnShared {
                write: Mutex::new(WriteState {
                    stream: write_half,
                    next_to_write: 0,
                    parked: BTreeMap::new(),
                    dead: false,
                }),
                inflight: AtomicUsize::new(0),
                id: next_conn_id,
            }),
        };
        let _ = senders[next_reader % senders.len()].send(conn);
        next_reader += 1;
    }

    // Graceful drain: readers stop admitting and are joined, then the
    // queue closes and workers finish every admitted request. After the
    // last join nothing can touch the service.
    for reader in readers {
        let _ = reader.join();
    }
    queue.close();
    for worker in workers {
        let _ = worker.join();
    }
}

/// The TCP front end: a bound listener ready to serve a [`TwinService`]
/// through the bounded worker pool.
pub struct TwinServer {
    listener: TcpListener,
    service: Arc<TwinService>,
    config: ServerConfig,
    /// Optional Prometheus scrape endpoint (`with_metrics_http`),
    /// serving from bind time until the handle drains.
    metrics_http: Option<HttpExporter>,
}

impl TwinServer {
    /// Bind to `addr` (use port 0 for an OS-assigned port, the loopback
    /// pattern tests and the example rely on) with the default
    /// [`ServerConfig`].
    pub fn bind(service: TwinService, addr: &str) -> std::io::Result<TwinServer> {
        Ok(TwinServer {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
            config: ServerConfig::default(),
            metrics_http: None,
        })
    }

    /// Replace the whole serving-tier configuration (builder style).
    pub fn with_config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the worker-thread count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Set the bounded request-queue depth (builder style).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth.max(1);
        self
    }

    /// Set the per-connection in-flight cap (builder style).
    pub fn with_per_client_inflight(mut self, cap: usize) -> Self {
        self.config.max_inflight_per_client = cap.max(1);
        self
    }

    /// Set the readers' idle nap (builder style): how long a reader
    /// sleeps when every socket it owns is idle.
    pub fn with_reader_nap(mut self, nap: Duration) -> Self {
        self.config.reader_nap = nap;
        self
    }

    /// Start a plain-HTTP metrics sidecar on `addr` (use port 0 for an
    /// OS-assigned port): `GET /metrics` answers the service's registry
    /// in Prometheus text exposition format 0.0.4. The listener serves
    /// immediately and stops when the server handle drains.
    pub fn with_metrics_http(mut self, addr: &str) -> std::io::Result<Self> {
        let service = Arc::clone(&self.service);
        self.metrics_http = Some(HttpExporter::serve(addr, move || service.render_prometheus())?);
        Ok(self)
    }

    /// The metrics sidecar's bound address, when one was started.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(|h| h.addr())
    }

    /// The bound address (connect [`crate::ServiceClient`] here).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Serve in a background supervisor thread until a
    /// [`Request::Shutdown`] arrives or the handle is shut down.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let supervisor = {
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&shutdown);
            let config = self.config;
            std::thread::spawn(move || supervise(self.listener, service, config, shutdown, addr))
        };
        ServerHandle {
            addr,
            shutdown,
            service: self.service,
            join: Some(supervisor),
            metrics_http: self.metrics_http,
        }
    }
}

/// Handle to a spawned server: address, shared service, orderly
/// shutdown. Dropping the handle also shuts the server down (joined,
/// never detached).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    service: Arc<TwinService>,
    join: Option<JoinHandle<()>>,
    metrics_http: Option<HttpExporter>,
}

impl ServerHandle {
    /// Address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics sidecar's address, when the server was built with
    /// [`TwinServer::with_metrics_http`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(|h| h.addr())
    }

    /// The served [`TwinService`] (e.g. to observe state after
    /// shutdown; the shutdown regression test pins that the twin stops
    /// moving once `shutdown` returns).
    pub fn service(&self) -> Arc<TwinService> {
        Arc::clone(&self.service)
    }

    /// Stop accepting connections and drain the tier: admitted requests
    /// finish, readers, workers, and the supervisor are all joined.
    /// When this returns, no server thread exists.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        // Stop the scrape endpoint last so metrics stay observable
        // through the drain itself.
        if let Some(exporter) = self.metrics_http.take() {
            exporter.shutdown();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}
