//! Terminal dashboard: run the coupled twin and render a live view every
//! few simulated minutes — the terminal stand-in for the paper's web
//! dashboard and AR overlays (Fig. 6).
//!
//! ```sh
//! cargo run --release --example dashboard
//! ```

use exadigit_core::{DigitalTwin, TwinConfig};
use exadigit_raps::workload::benchmark_day;
use exadigit_viz::chart::spark_series;
use exadigit_viz::dashboard::{gauge, Dashboard, LiveStore, Panel};
use exadigit_viz::heatmap::rack_heatmap;

fn main() {
    println!("ExaDigiT-rs dashboard — 2 simulated hours, rendered every 30 min\n");
    let mut twin = DigitalTwin::new(TwinConfig::frontier()).expect("config");
    let jobs: Vec<_> = benchmark_day(555)
        .into_iter()
        .filter(|j| j.submit_time_s < 2 * 3_600)
        .collect();
    twin.submit(jobs);

    let store = LiveStore::new();
    for frame in 1..=4u64 {
        twin.run(30 * 60).expect("run");

        // Publish live values (the simulation-pod → frontend hand-off of
        // the paper's K8s deployment).
        let snap = twin.snapshot();
        store.publish("power.system_mw", snap.system_w / 1e6);
        store.publish("power.loss_mw", snap.loss_w / 1e6);
        store.publish("power.efficiency", snap.efficiency);
        store.publish("jobs.running", twin.queue_state().0 as f64);
        store.publish("jobs.pending", twin.queue_state().1 as f64);
        for name in ["pue", "facility.htw_supply_temp", "facility.htw_return_temp"] {
            if let Some(v) = twin.cooling_output(name) {
                store.publish(format!("cooling.{name}"), v);
            }
        }

        let mut dash = Dashboard::new();
        dash.add(Panel::new(
            format!("ExaDigiT-rs · t = {:.1} h", twin.now() as f64 / 3600.0),
            format!(
                "{}\n{}\nsystem power [MW] {}",
                gauge("utilization", twin.utilization(), 40),
                gauge("efficiency", snap.efficiency, 40),
                spark_series(&twin.outputs().system_power_w.map(|w| w / 1e6), 52),
            ),
        ));
        dash.add(Panel::from_store("power", &store, "power."));
        dash.add(Panel::from_store("cooling plant", &store, "cooling."));
        dash.add(Panel::from_store("scheduler", &store, "jobs."));
        // Rack heat map from the per-rack AC power of the latest snapshot.
        dash.add(Panel::new(
            "rack power heat map",
            rack_heatmap(&snap.rack_ac_w, 16, "W per rack"),
        ));
        println!("{}", dash.render(78));
        let _ = frame;
    }

    println!("final report:\n{}", twin.report());

    // The L1 scene graph export that an external renderer would consume.
    let scene = twin.scene();
    println!(
        "\nscene graph: {} nodes, {} telemetry bindings (JSON export available via SceneGraph::to_json)",
        scene.node_count(),
        scene.all_bindings().len()
    );
}
