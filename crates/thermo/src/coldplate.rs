//! Cold-plate thermal model.
//!
//! Each Frontier blade carries two CPU cold plates and eight GPU cold
//! plates (§III-C1). The paper's requirements analysis (§III-A) lists
//! "early detection of thermal throttling" and "water quality issues ...
//! causing blockage to specific nodes" as target use cases; both need a
//! junction-temperature estimate from coolant conditions. The standard
//! vendor datum is a thermal resistance curve `R(Q)` (K/W as a function of
//! coolant flow), which we model as `R(Q) = R_conv0 · (Q/Q_design)^-0.8 +
//! R_cond` — convective part scaling with flow, conductive part fixed.

use serde::{Deserialize, Serialize};

/// A cold plate with a flow-dependent thermal resistance curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdPlate {
    /// Convective resistance at design flow, K/W.
    pub r_conv_design: f64,
    /// Conductive (flow-independent) resistance, K/W.
    pub r_cond: f64,
    /// Design coolant flow through the plate, m³/s.
    pub q_design: f64,
}

impl ColdPlate {
    /// MI250X GPU cold plate: ~560 W max, junction limited at ~95 °C with
    /// ~32 °C coolant → total R ≈ 0.08 K/W at design flow.
    pub fn gpu() -> Self {
        ColdPlate { r_conv_design: 0.055, r_cond: 0.025, q_design: 1.0e-5 }
    }

    /// Trento CPU cold plate: ~280 W max → R ≈ 0.12 K/W at design flow.
    pub fn cpu() -> Self {
        ColdPlate { r_conv_design: 0.085, r_cond: 0.035, q_design: 8.0e-6 }
    }

    /// Thermal resistance (K/W) at coolant flow `q` (m³/s). Flow is floored
    /// at 1 % of design to keep the curve finite under full blockage.
    pub fn resistance(&self, q: f64) -> f64 {
        let q_rel = (q / self.q_design).max(0.01);
        self.r_conv_design * q_rel.powf(-0.8) + self.r_cond
    }

    /// Junction (die) temperature for dissipated power `power_w` with
    /// coolant at `t_coolant` °C flowing at `q` m³/s.
    pub fn junction_temperature(&self, power_w: f64, t_coolant: f64, q: f64) -> f64 {
        t_coolant + self.resistance(q) * power_w
    }

    /// True when the junction would exceed `t_throttle` °C — the thermal
    /// throttling predicate used by the twin's diagnostics.
    pub fn would_throttle(&self, power_w: f64, t_coolant: f64, q: f64, t_throttle: f64) -> bool {
        self.junction_temperature(power_w, t_coolant, q) > t_throttle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_at_design_stays_cool() {
        let p = ColdPlate::gpu();
        let tj = p.junction_temperature(560.0, 32.0, p.q_design);
        assert!(tj < 95.0, "tj={tj}");
        assert!(tj > 32.0);
    }

    #[test]
    fn resistance_rises_as_flow_drops() {
        let p = ColdPlate::gpu();
        let r_full = p.resistance(p.q_design);
        let r_half = p.resistance(p.q_design * 0.5);
        let r_tenth = p.resistance(p.q_design * 0.1);
        assert!(r_half > r_full);
        assert!(r_tenth > r_half);
    }

    #[test]
    fn blockage_triggers_throttle_detection() {
        let p = ColdPlate::gpu();
        // Full flow at max power: no throttle at a 95 °C limit.
        assert!(!p.would_throttle(560.0, 32.0, p.q_design, 95.0));
        // 90 % blockage: junction rockets past the limit.
        assert!(p.would_throttle(560.0, 32.0, p.q_design * 0.1, 95.0));
    }

    #[test]
    fn cpu_plate_higher_resistance() {
        assert!(
            ColdPlate::cpu().resistance(ColdPlate::cpu().q_design)
                > ColdPlate::gpu().resistance(ColdPlate::gpu().q_design)
        );
    }

    #[test]
    fn zero_power_equals_coolant_temp() {
        let p = ColdPlate::gpu();
        assert_eq!(p.junction_temperature(0.0, 30.0, p.q_design), 30.0);
    }

    #[test]
    fn fully_blocked_flow_is_finite() {
        let p = ColdPlate::gpu();
        let r = p.resistance(0.0);
        assert!(r.is_finite());
        assert!(r > p.resistance(p.q_design));
    }
}
