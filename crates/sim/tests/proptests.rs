//! Property-based tests for the simulation substrate.

use exadigit_sim::stats::{mae, percentile, rmse, Histogram, Welford};
use exadigit_sim::{Rng, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// Uniform deviates always land in [0, 1).
    #[test]
    fn rng_uniform_in_unit_interval(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Exponential deviates are non-negative for any positive rate.
    #[test]
    fn rng_exponential_non_negative(seed in any::<u64>(), lambda in 1e-6f64..1e3) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.exponential(lambda) >= 0.0);
        }
    }

    /// Split streams never alias their parent stream.
    #[test]
    fn rng_split_differs_from_parent(seed in any::<u64>(), stream in 1u64..1000) {
        let parent = Rng::new(seed);
        let mut a = parent.clone();
        let mut b = parent.split(stream);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(same < 4);
    }

    /// uniform_usize respects its bound.
    #[test]
    fn rng_uniform_usize_bounded(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.uniform_usize(n) < n);
        }
    }

    /// Welford merge is order-independent (within float tolerance).
    #[test]
    fn welford_merge_commutes(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split_at in 0usize..200,
    ) {
        let k = split_at.min(xs.len());
        let (left, right) = xs.split_at(k);
        let mut a = Welford::new();
        left.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        right.iter().for_each(|&x| b.push(x));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        if ab.count() > 0 {
            prop_assert!((ab.mean() - ba.mean()).abs() <= 1e-9 * (1.0 + ab.mean().abs()));
            prop_assert_eq!(ab.min(), ba.min());
            prop_assert_eq!(ab.max(), ba.max());
        }
    }

    /// RMSE ≥ MAE ≥ 0 for any pair of equal-length series.
    #[test]
    fn rmse_dominates_mae(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..100)
    ) {
        let p: Vec<f64> = pairs.iter().map(|x| x.0).collect();
        let m: Vec<f64> = pairs.iter().map(|x| x.1).collect();
        let r = rmse(&p, &m);
        let a = mae(&p, &m);
        prop_assert!(a >= 0.0);
        prop_assert!(r >= a - 1e-12);
    }

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentile_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let p25 = percentile(&values, 25.0);
        let p50 = percentile(&values, 50.0);
        let p75 = percentile(&values, 75.0);
        prop_assert!(p25 <= p50 && p50 <= p75);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 >= min && p75 <= max);
    }

    /// Histogram never loses observations.
    #[test]
    fn histogram_conserves_count(
        values in prop::collection::vec(-100f64..200.0, 0..300),
        nbins in 1usize..64,
    ) {
        let mut h = Histogram::new(0.0, 100.0, nbins);
        for &v in &values {
            h.push(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    /// Linear interpolation of a series is bracketed by its min/max.
    #[test]
    fn series_sample_bracketed(
        values in prop::collection::vec(-1e3f64..1e3, 2..100),
        t in -100f64..2e4,
    ) {
        let s = TimeSeries::from_values(0.0, 15.0, values.clone());
        let v = s.sample_at(t);
        prop_assert!(v >= s.min() - 1e-9 && v <= s.max() + 1e-9);
    }

    /// Resampling at the original cadence reproduces the series.
    #[test]
    fn series_resample_identity(values in prop::collection::vec(-1e3f64..1e3, 2..64)) {
        let s = TimeSeries::from_values(0.0, 15.0, values);
        let r = s.resample(15.0);
        prop_assert_eq!(r.len(), s.len());
        for (a, b) in r.samples().zip(s.samples()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Trapezoid integral of a constant series is exact.
    #[test]
    fn series_integral_of_constant(c in -1e3f64..1e3, n in 2usize..200) {
        let s = TimeSeries::from_values(0.0, 1.0, vec![c; n]);
        let expected = c * (n - 1) as f64;
        prop_assert!((s.integrate() - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }
}
