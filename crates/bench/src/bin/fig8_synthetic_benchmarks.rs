//! Regenerates **Fig. 8** of the paper: "Synthetic benchmark verification
//! test. Total system power predicted by RAPS and the transient
//! temperature response predicted by the cooling model" — an HPL run
//! followed by an OpenMxP run on 9216 nodes, with the primary return
//! temperature trailing the power plateaus.

use exadigit_bench::{mw, section};
use exadigit_cooling::CoolingModel;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
use exadigit_raps::workload::{hpl_job, openmxp_job};
use exadigit_sim::TimeSeries;
use exadigit_viz::chart::{bucket_means, line_chart};

fn main() {
    section("Fig. 8 — synthetic benchmark verification (HPL + OpenMxP)");

    let mut sim = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        15,
    );
    sim.attach_cooling(CoolingCoupling::attach(Box::new(CoolingModel::frontier()), 25).unwrap());

    // 30 min idle, a 2 h HPL, a gap, then a 45 min OpenMxP run.
    let hpl = hpl_job(1, 30 * 60);
    let mxp = openmxp_job(2, 30 * 60 + hpl.wall_time_s + 20 * 60);
    let horizon = mxp.submit_time_s + mxp.wall_time_s + 30 * 60;
    sim.submit_jobs(vec![hpl, mxp]);

    let mut t_ret = TimeSeries::new(0.0, 15.0);
    let vr_ret = sim
        .cooling_model()
        .unwrap()
        .var_by_name("facility.htw_return_temp")
        .unwrap()
        .vr;
    let mut peak_hpl = 0.0f64;
    let mut peak_mxp = 0.0f64;
    for sec in 0..horizon {
        sim.tick().expect("run");
        let t = sec + 1;
        if t % 15 == 0 {
            t_ret.push(sim.cooling_model().unwrap().get_real(vr_ret).unwrap());
        }
        let p = sim.snapshot().system_w;
        if t < 30 * 60 + 2 * 3_600 + 600 {
            peak_hpl = peak_hpl.max(p);
        } else {
            peak_mxp = peak_mxp.max(p);
        }
    }

    let power_mw: Vec<f64> =
        sim.outputs().system_power_w.samples().map(|w| w / 1e6).collect();
    let width = 72;
    println!("\n  total system power [MW]:");
    println!("{}", line_chart(&[("P_system", &bucket_means(&power_mw, width))], width, 12));
    println!("  primary (HTW) return temperature [degC]:");
    println!(
        "{}",
        line_chart(&[("T_return", &bucket_means(&t_ret.to_vec(), width))], width, 10)
    );

    println!("  HPL peak power     {:>7.2} MW  (Table III core phase: 22.3 MW)", mw(peak_hpl));
    println!("  OpenMxP peak power {:>7.2} MW  (hotter GPU profile than HPL)", mw(peak_mxp));
    println!(
        "  return-temp span   {:>7.2} → {:.2} °C (transient response to the plateaus)",
        t_ret.min(),
        t_ret.max()
    );
    assert!(peak_mxp > peak_hpl, "OpenMxP pushes GPUs harder than HPL");
}
