//! Durable-snapshot round trip: the bit-identity contract restart
//! recovery rests on.
//!
//! `load(save(sim at t)).run_until(t + h)` must be `f64::to_bits`-identical
//! to the original simulation continuing uninterrupted — same recorded
//! series, same energy bits, same completions — across every scheduler
//! policy and regardless of the pool width the rehydrated copies are
//! fanned out at. The serialized form itself must be canonical
//! (save → load → save is byte-stable), RNG streams must continue
//! mid-sequence without a seam (Box–Muller cache included), and UQ
//! draws answered from a disk-rehydrated snapshot must match the
//! resident snapshot's answers exactly.
//!
//! The same precision note as `service_fork.rs` applies: the fresh
//! reference is advanced with the same `run_until(t)`-then-
//! `run_until(t + h)` call sequence as the saved path, because pausing
//! at `t` splits a steady-state gap's closed-form energy addition and
//! can move `energy_j` by float associativity (~1 ULP) while every
//! recorded series stays bit-identical.

use exadigit_core::config::TwinConfig;
use exadigit_core::twin::DigitalTwin;
use exadigit_raps::config::{PartitionConfig, SystemConfig};
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_service::{run_whatif, SnapshotStore, WhatIfSpec};
use exadigit_sim::ensemble::EnsembleRunner;
use exadigit_sim::fmi::CoSimModel;
use exadigit_sim::Rng;
use proptest::prelude::*;
use std::path::PathBuf;

const POLICIES: [Policy; 4] =
    [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill];

fn small_config(nodes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::frontier();
    cfg.partitions = vec![PartitionConfig { name: "batch".into(), nodes, gpus_per_node: 4 }];
    cfg
}

fn sim(policy: Policy) -> RapsSimulation {
    RapsSimulation::new(small_config(96), PowerDelivery::StandardAC, policy, 15)
}

/// Everything the equivalence compares, all at bit level.
fn state_digest(s: &RapsSimulation) -> (Vec<u64>, Vec<u64>, u64, u64, usize, usize) {
    let out = s.outputs();
    (
        out.system_power_w.samples().map(|v| v.to_bits()).collect(),
        out.utilization.samples().map(|v| v.to_bits()).collect(),
        out.energy_j.to_bits(),
        s.report().jobs_completed,
        s.running_count(),
        s.pending_count(),
    )
}

/// Decode a saved simulation. Power-only states never invoke the
/// cooling rebuild hook.
fn rehydrate(json: &str) -> RapsSimulation {
    let value: serde::Value = serde_json::from_str(json).expect("saved state parses");
    RapsSimulation::from_state(&value, |_| -> Result<Box<dyn CoSimModel>, String> {
        Err("power-only state has no cooling to rebuild".into())
    })
    .expect("saved state loads")
}

fn arbitrary_jobs() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (1usize..=96, 30u64..2_400, 0u64..1_200, 0.0f32..1.0, 0.0f32..1.0),
        1..24,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, wall, submit, cu, gu))| {
                Job::new(i as u64, format!("j{i}"), nodes, wall, submit, cu, gu)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant, for every policy and at pool widths 1 and
    /// 4: a simulation saved mid-run and loaded back continues
    /// bit-identically to the original running uninterrupted, the
    /// serialized form is canonical, and saving is observation-free (the
    /// original is unaffected by having been saved).
    #[test]
    fn save_load_run_equals_uninterrupted_run(
        jobs in arbitrary_jobs(),
        pause_at in 60u64..2_000,
        horizon in 60u64..2_400,
    ) {
        for policy in POLICIES {
            let target = pause_at + horizon;

            // Uninterrupted reference, advanced with the same call
            // sequence as the saved path (see the module docs on why the
            // pause point is part of the energy-bit contract).
            let mut fresh = sim(policy);
            fresh.submit_jobs(jobs.clone());
            fresh.run_until(pause_at).unwrap();
            fresh.run_until(target).unwrap();
            let reference = state_digest(&fresh);

            let mut live = sim(policy);
            live.submit_jobs(jobs.clone());
            live.run_until(pause_at).unwrap();
            let json = serde_json::to_string(&live.save_state().unwrap()).unwrap();

            // Canonical encoding: save → load → save is byte-stable.
            let again =
                serde_json::to_string(&rehydrate(&json).save_state().unwrap()).unwrap();
            prop_assert_eq!(&again, &json, "policy {:?}: second save drifted", policy);

            // Two independent rehydrations continued to the horizon, at
            // pool widths 1 and 4: both must equal the reference (and
            // therefore each other).
            for width in [1usize, 4] {
                let digests = EnsembleRunner::new(0).threads(width).map(
                    vec![(), ()],
                    |_ctx, ()| {
                        let mut back = rehydrate(&json);
                        back.run_until(target).unwrap();
                        state_digest(&back)
                    },
                );
                prop_assert_eq!(
                    &digests[0], &reference,
                    "policy {:?}, width {}: rehydrated run diverged from the original",
                    policy, width
                );
                prop_assert_eq!(
                    &digests[0], &digests[1],
                    "policy {:?}, width {}: two rehydrations of one save diverged",
                    policy, width
                );
            }

            // Saving is a pure observation: the original continues as if
            // never serialized.
            live.run_until(target).unwrap();
            prop_assert_eq!(&state_digest(&live), &reference,
                "policy {:?}: saving perturbed the original", policy);
        }
    }
}

/// A save/load boundary landing *inside* a record gap must neither skip
/// nor duplicate backfilled samples. The lazy record backfill derives
/// its cursor from series length + clock (nothing new is serialized),
/// so with hourly recording a pause at t = 5,000 s — 1,400 s past the
/// t = 3,600 s boundary, 2,200 s before the next — is the adversarial
/// spot: the restored kernel must resume the half-spanned gap exactly.
/// Pinned at bit level against the eager per-second kernel, which never
/// backfills at all.
#[test]
fn save_load_mid_record_gap_matches_eager_kernel_bit_for_bit() {
    let jobs: Vec<Job> = [
        (48usize, 7_200u64, 0u64, 0.7f32, 0.9f32),
        (16, 900, 1_000, 0.4, 0.5),
        (96, 4_000, 4_200, 0.9, 0.8),
        (8, 60, 9_500, 0.2, 0.3),
        (32, 11_000, 12_000, 0.6, 0.7),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(nodes, wall, submit, cu, gu))| {
        Job::new(i as u64, format!("j{i}"), nodes, wall, submit, cu, gu)
    })
    .collect();
    for policy in POLICIES {
        let mk = || {
            let mut s =
                RapsSimulation::new(small_config(96), PowerDelivery::StandardAC, policy, 3_600);
            s.submit_jobs(jobs.clone());
            s
        };
        let mut eager = mk();
        eager.run_until_per_second(25_000).unwrap();

        let mut live = mk();
        live.run_until(5_000).unwrap();
        let json = serde_json::to_string(&live.save_state().unwrap()).unwrap();
        let mut back = rehydrate(&json);
        back.run_until(25_000).unwrap();

        let (rb, re) = (back.report(), eager.report());
        assert_eq!(rb.jobs_completed, re.jobs_completed, "policy {policy:?}");
        assert_eq!(back.pool(), eager.pool(), "policy {policy:?}");
        let (ob, oe) = (back.outputs(), eager.outputs());
        for (name, a, b) in [
            ("system_power_w", &ob.system_power_w, &oe.system_power_w),
            ("utilization", &ob.utilization, &oe.utilization),
            ("loss_w", &ob.loss_w, &oe.loss_w),
            ("efficiency", &ob.efficiency, &oe.efficiency),
        ] {
            assert_eq!(a.len(), b.len(), "policy {policy:?}: {name} length");
            for (i, (x, y)) in a.samples().zip(b.samples()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "policy {policy:?}: {name}[{i}] diverged across the mid-gap reload"
                );
            }
        }
    }
}

/// RNG streams must continue mid-sequence across the round trip — the
/// xoshiro state *and* the Box–Muller spare, which is why the cache is
/// part of the serialized state: dropping it would shift every
/// subsequent normal draw by one.
#[test]
fn rng_stream_continues_bit_exact_across_the_round_trip() {
    let mut rng = Rng::new(0xDEAD_BEEF).split(3);
    // An odd number of normals loads the Box–Muller cache.
    for _ in 0..7 {
        rng.standard_normal();
    }
    rng.next_u64();
    let json = serde_json::to_string(&rng).unwrap();
    let mut back: Rng = serde_json::from_str(&json).unwrap();
    for i in 0..64 {
        assert_eq!(rng.next_u64(), back.next_u64(), "u64 draw {i} diverged");
        assert_eq!(
            rng.standard_normal().to_bits(),
            back.standard_normal().to_bits(),
            "normal draw {i} diverged"
        );
    }
}

/// UQ answers from a disk-rehydrated snapshot equal the resident
/// snapshot's answers exactly: the snapshot seed rides the file, draw
/// streams are split per fork, and outcomes are pool-width-invariant.
#[test]
fn uq_draws_on_a_rehydrated_snapshot_match_the_resident_snapshot() {
    let dir = std::env::temp_dir()
        .join(format!("exadigit-roundtrip-uq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SnapshotStore::new(4, 99).with_persist_dir(&dir).unwrap();

    let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
    let mut gen = exadigit_raps::workload::WorkloadGenerator::new(
        exadigit_raps::workload::WorkloadParams::default(),
        7,
    );
    twin.submit(gen.generate_day(0));
    twin.run(3_600).unwrap();
    let snapshot = store.take(&twin, "t1h".into()).unwrap();

    let spec = WhatIfSpec { horizon_s: 1_800, draws: 8, ..WhatIfSpec::default() };
    let resident = run_whatif(&snapshot, &spec, Some(2)).unwrap();
    drop(snapshot);
    drop(store);

    // "Restart": recover the store from disk and ask again.
    let mut recovered = SnapshotStore::recover(&dir).unwrap();
    let rehydrated = recovered.get(1).unwrap().expect("persisted snapshot survives");
    for width in [1usize, 4] {
        let replay = run_whatif(&rehydrated, &spec, Some(width)).unwrap();
        assert_eq!(
            resident, replay,
            "width {width}: UQ outcome diverged across the disk round trip"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/frontier_day_snapshot.json")
}

/// The exact twin the pinned fixture was generated from: a Frontier
/// power-only twin carrying a generated day of jobs, paused at
/// t = 5000 s (mid-queue, off the 15 s recording grid).
fn frontier_day_twin() -> DigitalTwin {
    let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
    let mut gen = exadigit_raps::workload::WorkloadGenerator::new(
        exadigit_raps::workload::WorkloadParams::default(),
        2024,
    );
    twin.submit(gen.generate_day(0));
    twin.run(5_000).unwrap();
    twin
}

/// Golden fixture: a serialized Frontier-day snapshot pinned in the
/// repo. Every CI run loads it and replays four hours; if the snapshot
/// format drifts without a version bump this fails loudly at the load,
/// and a deliberate format change regenerates the fixture with
/// `EXADIGIT_REGEN_FIXTURES=1 cargo test golden_fixture`.
#[test]
fn golden_fixture_frontier_day_loads_and_replays_bit_identically() {
    let path = fixture_path();
    if std::env::var("EXADIGIT_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, frontier_day_twin().to_snapshot_json().unwrap()).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "pinned fixture {} is unreadable ({e}); regenerate with \
             EXADIGIT_REGEN_FIXTURES=1 cargo test golden_fixture"
        , path.display())
    });
    let mut loaded = DigitalTwin::from_snapshot_json(&text).unwrap_or_else(|e| {
        panic!(
            "pinned Frontier-day snapshot no longer loads: {e}\n\
             If the snapshot format changed on purpose, bump \
             SNAPSHOT_FORMAT_VERSION (crates/core/src/twin.rs), document the \
             change in docs/DESIGN.md, and regenerate the fixture with \
             EXADIGIT_REGEN_FIXTURES=1 cargo test golden_fixture"
        )
    });

    let mut fresh = frontier_day_twin();
    assert_eq!(loaded.now(), fresh.now(), "fixture was taken at t = 5000 s");
    loaded.run(14_400).unwrap();
    fresh.run(14_400).unwrap();

    assert_eq!(fresh.report(), loaded.report());
    let (a, b) = (fresh.outputs(), loaded.outputs());
    assert_eq!(a.system_power_w.len(), b.system_power_w.len());
    for (i, (x, y)) in
        a.system_power_w.samples().zip(b.system_power_w.samples()).enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "power sample {i} diverged");
    }
    for (i, (x, y)) in a.utilization.samples().zip(b.utilization.samples()).enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "utilization sample {i} diverged");
    }
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits(), "energy diverged");
}
