//! Discrete simulation clock.
//!
//! RAPS advances time one second at a time (Algorithm 1 of the paper); the
//! cooling model is evaluated every 15 s ("trace quanta", §III-B). The clock
//! keeps integral seconds to avoid floating-point drift over multi-day
//! replays and offers helpers for the multi-rate pattern
//! (`timestep mod 15 == 0`).

use serde::{Deserialize, Serialize};

/// Seconds in one simulated day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// Seconds in one simulated hour.
pub const SECONDS_PER_HOUR: u64 = 3_600;

/// A discrete clock counting whole simulated seconds from an epoch offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    /// Seconds elapsed since simulation start.
    elapsed: u64,
    /// Epoch offset in seconds (e.g. seconds-of-day the replay starts at).
    epoch: u64,
}

impl SimClock {
    /// New clock starting at `epoch` seconds (absolute), zero elapsed.
    pub fn new(epoch: u64) -> Self {
        SimClock { elapsed: 0, epoch }
    }

    /// Clock starting at midnight.
    pub fn midnight() -> Self {
        SimClock::new(0)
    }

    /// Advance the clock by one second, returning the new elapsed count.
    #[inline]
    pub fn tick(&mut self) -> u64 {
        self.elapsed += 1;
        self.elapsed
    }

    /// Advance by `n` seconds.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        self.elapsed += n;
    }

    /// Seconds elapsed since simulation start.
    #[inline]
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Absolute simulated time (epoch + elapsed) in seconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.epoch + self.elapsed
    }

    /// Absolute simulated time as `f64` seconds — the unit used across the
    /// FMI boundary.
    #[inline]
    pub fn now_f64(&self) -> f64 {
        self.now() as f64
    }

    /// True every `period` seconds (and at t=0), mirroring the paper's
    /// `timestep mod 15 == 0` cooling-model cadence.
    #[inline]
    pub fn every(&self, period: u64) -> bool {
        debug_assert!(period > 0);
        self.elapsed.is_multiple_of(period)
    }

    /// Second-of-day in `[0, 86400)` for diurnal forcing (wet-bulb cycles).
    #[inline]
    pub fn second_of_day(&self) -> u64 {
        self.now() % SECONDS_PER_DAY
    }

    /// Fraction of the day in `[0, 1)`.
    #[inline]
    pub fn day_fraction(&self) -> f64 {
        self.second_of_day() as f64 / SECONDS_PER_DAY as f64
    }

    /// Whole simulated days elapsed.
    #[inline]
    pub fn days_elapsed(&self) -> u64 {
        self.elapsed / SECONDS_PER_DAY
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::midnight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate() {
        let mut c = SimClock::midnight();
        for _ in 0..100 {
            c.tick();
        }
        assert_eq!(c.elapsed(), 100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn epoch_offsets_now_but_not_elapsed() {
        let mut c = SimClock::new(3_600);
        c.advance(10);
        assert_eq!(c.elapsed(), 10);
        assert_eq!(c.now(), 3_610);
    }

    #[test]
    fn every_fifteen_matches_paper_cadence() {
        let mut c = SimClock::midnight();
        let mut cooling_calls = 0;
        for _ in 0..60 {
            c.tick();
            if c.every(15) {
                cooling_calls += 1;
            }
        }
        assert_eq!(cooling_calls, 4); // at t = 15, 30, 45, 60
    }

    #[test]
    fn day_fraction_wraps() {
        let mut c = SimClock::new(SECONDS_PER_DAY - 1);
        assert!(c.day_fraction() > 0.99);
        c.tick();
        assert_eq!(c.second_of_day(), 0);
        assert_eq!(c.day_fraction(), 0.0);
    }

    #[test]
    fn days_elapsed_counts_whole_days() {
        let mut c = SimClock::midnight();
        c.advance(3 * SECONDS_PER_DAY + 5);
        assert_eq!(c.days_elapsed(), 3);
    }
}
