//! End-to-end loopback: a real TCP server, concurrent clients, the full
//! snapshot → fork → query → cache lifecycle over the wire.

use exadigit_core::config::TwinConfig;
use exadigit_service::{
    Request, Response, ServiceClient, TelemetryFeed, TwinServer, TwinService, WhatIfSpec,
};

fn spawn_server() -> exadigit_service::ServerHandle {
    let service = TwinService::new(
        TwinConfig::frontier_power_only(),
        TelemetryFeed::synthetic(123, 1),
        123,
    )
    .unwrap()
    .with_threads(2);
    TwinServer::bind(service, "127.0.0.1:0").unwrap().spawn()
}

#[test]
fn full_lifecycle_over_tcp() {
    let handle = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    // Ingest one synthetic hour.
    let r = client.request(&Request::Advance { seconds: 3_600 }).unwrap();
    let Response::Advanced { now_s, jobs_ingested } = r else { panic!("{r:?}") };
    assert_eq!(now_s, 3_600);
    assert!(jobs_ingested > 0);

    // Snapshot, then query it twice: compute once, hit the cache once.
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "t1h".into() }).unwrap()
    else {
        panic!()
    };
    let query = Request::Query {
        snapshot_id: info.id,
        spec: WhatIfSpec { horizon_s: 900, ..WhatIfSpec::default() },
    };
    let Response::Answer { cached: false, outcome: first } =
        client.request(&query).unwrap()
    else {
        panic!("first ask computes")
    };
    let Response::Answer { cached: true, outcome: second } =
        client.request(&query).unwrap()
    else {
        panic!("second ask hits the cache")
    };
    assert_eq!(first, second);

    // Listing sees the snapshot; dropping it frees the id.
    let Response::Snapshots(list) = client.request(&Request::ListSnapshots).unwrap() else {
        panic!()
    };
    assert_eq!(list.len(), 1);
    let Response::Dropped { snapshot_id } =
        client.request(&Request::DropSnapshot { snapshot_id: info.id }).unwrap()
    else {
        panic!()
    };
    assert_eq!(snapshot_id, info.id);

    handle.shutdown();
}

#[test]
fn concurrent_clients_get_identical_deterministic_answers() {
    let handle = spawn_server();
    let addr = handle.addr();

    {
        let mut setup = ServiceClient::connect(addr).unwrap();
        setup.request(&Request::Advance { seconds: 1_800 }).unwrap();
        let Response::SnapshotTaken(info) =
            setup.request(&Request::Snapshot { label: "base".into() }).unwrap()
        else {
            panic!()
        };
        assert_eq!(info.id, 1);
    }

    // Three clients ask the same three questions concurrently.
    let specs = |i: u64| WhatIfSpec {
        label: format!("q{i}"),
        horizon_s: 600 + 300 * i,
        ..WhatIfSpec::default()
    };
    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).unwrap();
                (0..3u64)
                    .map(|i| {
                        let r = client
                            .request(&Request::Query { snapshot_id: 1, spec: specs(i) })
                            .unwrap();
                        match r {
                            Response::Answer { outcome, .. } => outcome,
                            other => panic!("{other:?}"),
                        }
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(results[0], results[1], "concurrent clients must agree");
    assert_eq!(results[1], results[2]);
    assert!(results[0][0].to_s < results[0][2].to_s);

    handle.shutdown();
}

#[test]
fn malformed_lines_answer_errors_without_dropping_the_connection() {
    use std::io::{BufRead, BufReader, Write};
    let handle = spawn_server();
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer.write_all(b"{not json}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Error"), "{line}");

    // The connection is still usable afterwards.
    writer.write_all(b"\"Status\"\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Status"), "{line}");

    handle.shutdown();
}

#[test]
fn shutdown_request_stops_the_server() {
    let handle = spawn_server();
    let addr = handle.addr();
    let mut client = ServiceClient::connect(addr).unwrap();
    let r = client.request(&Request::Shutdown).unwrap();
    assert_eq!(r, Response::ShuttingDown);
    handle.shutdown(); // idempotent: joins the already-stopping accept loop
}
