//! Fidelity-backend guarantees.
//!
//! 1. **Golden equivalence**: routing the L4 plant through the
//!    `CoolingBackend` layer must be a pure refactor — bit-identical
//!    (`f64::to_bits`) to the pre-refactor direct coupling on a pinned
//!    short Frontier run. The fixture below was captured from the seed
//!    code path (`with_cooling: true`) immediately before the backend
//!    layer was introduced; if it ever drifts, the refactor has changed
//!    the physics, not just the plumbing.
//! 2. **L3/L4 agreement**: inside the surrogate's training envelope the
//!    L3 backend must track the L4 plant's PUE; outside it,
//!    extrapolation must be detected and counted, never fatal.

use exadigit_core::whatif::{whatif_grid, Fidelity};
use exadigit_core::{CoolingBackend, DigitalTwin, SurrogateSource, TwinConfig};
use exadigit_raps::job::Job;
use exadigit_telemetry::replay::CoolingTrace;

/// PUE every 15 s over the golden run, as `f64::to_bits`, captured from
/// the pre-refactor `with_cooling: true` path.
const GOLDEN_PUE_BITS: [u64; 40] = [
    0x3ff069dc11df6015,
    0x3ff0695b8296fd59,
    0x3ff068a29587ef06,
    0x3ff0680dd50063a1,
    0x3ff06780948417a3,
    0x3ff0670123d19274,
    0x3ff06684230babfd,
    0x3ff0660f54983451,
    0x3ff065a058e69fc5,
    0x3ff06537e8a2cf42,
    0x3ff064d60e27e40f,
    0x3ff0647acc7123ca,
    0x3ff06425cb4ed295,
    0x3ff063d6d0ae2394,
    0x3ff0638dc185eec7,
    0x3ff0634a84581b6f,
    0x3ff0630d01e5d0f5,
    0x3ff062d514f26408,
    0x3ff062a28bedb8c7,
    0x3ff062752cf1c438,
    0x3ff0624cb24a9282,
    0x3ff06228d200bb8b,
    0x3ff0620934527f1b,
    0x3ff061ed8110ffab,
    0x3ff061d55bdacbe4,
    0x3ff061c0676ca5dd,
    0x3ff061ae45a047b5,
    0x3ff0619e994848af,
    0x3ff0619106f82958,
    0x3ff06185365844cd,
    0x3ff09701266a1e54,
    0x3ff0962529e0193a,
    0x3ff0958152dfe318,
    0x3ff095149e6341bf,
    0x3ff094b15be04c75,
    0x3ff09184d4025c9b,
    0x3ff090307548dd87,
    0x3ff0901ebe003967,
    0x3ff08fc32a85f36f,
    0x3ff08f78d2eac933,
];

/// System power every 15 s over the golden run (`f64::to_bits`). The
/// workload holds one plateau while the job runs, then drops to idle —
/// the bits must match exactly, including the transition sample.
const GOLDEN_POWER_BITS: [u64; 2] = [
    0x416561ed7623a5f5, // loaded plateau (samples 0..30)
    0x415b9b4dac7f6c1e, // idle tail (samples 30..40)
];

const GOLDEN_SUPPLY_TEMP_BITS: u64 = 0x403f227af42bf6fa;
const GOLDEN_COOLING_POWER_BITS: u64 = 0x411a4d23751b3691;

/// The golden run: Frontier L4 twin, one 450 s / 2048-node job, 600 s.
fn golden_run(cooling: CoolingBackend) -> DigitalTwin {
    let cfg = TwinConfig::frontier().with_backend(cooling);
    let mut twin = DigitalTwin::new(cfg).unwrap();
    twin.submit(vec![Job::new(1, "golden", 2048, 450, 5, 0.7, 0.9)]);
    twin.run(600).unwrap();
    twin
}

#[test]
fn l4_backend_bit_identical_to_pre_refactor_coupling() {
    let twin = golden_run(CoolingBackend::Plant);
    let out = twin.outputs();

    assert_eq!(out.pue.len(), GOLDEN_PUE_BITS.len());
    for (i, (v, pinned)) in out.pue.samples().zip(&GOLDEN_PUE_BITS).enumerate() {
        assert_eq!(
            v.to_bits(),
            *pinned,
            "pue sample {i}: {v} != pinned {}",
            f64::from_bits(*pinned)
        );
    }
    assert_eq!(out.system_power_w.len(), 40);
    for (i, v) in out.system_power_w.samples().enumerate() {
        let pinned = if i < 30 { GOLDEN_POWER_BITS[0] } else { GOLDEN_POWER_BITS[1] };
        assert_eq!(v.to_bits(), pinned, "power sample {i}: {v}");
    }
    let t = twin.cooling_output("cdu[1].secondary_supply_temp").unwrap();
    assert_eq!(t.to_bits(), GOLDEN_SUPPLY_TEMP_BITS, "supply temp {t}");
    let cp = twin.cooling_output("cooling_power").unwrap();
    assert_eq!(cp.to_bits(), GOLDEN_COOLING_POWER_BITS, "cooling power {cp}");
}

#[test]
fn golden_workload_unchanged_without_cooling() {
    // The power side of the golden run must not depend on the backend at
    // all (cooling is one-way coupled: heat flows in, nothing back).
    let twin = golden_run(CoolingBackend::None);
    for (i, v) in twin.outputs().system_power_w.samples().enumerate() {
        let pinned = if i < 30 { GOLDEN_POWER_BITS[0] } else { GOLDEN_POWER_BITS[1] };
        assert_eq!(v.to_bits(), pinned, "power sample {i}: {v}");
    }
    assert!(twin.cooling_output("pue").is_none());
}

#[test]
fn replay_backend_rides_the_same_coupling() {
    // An L2 trace through the same golden run: power identical, PUE from
    // the trace instead of the plant.
    let trace = CoolingTrace::constant(1.08, 4.2e5);
    let twin = golden_run(CoolingBackend::Replay(trace));
    for (i, v) in twin.outputs().system_power_w.samples().enumerate() {
        let pinned = if i < 30 { GOLDEN_POWER_BITS[0] } else { GOLDEN_POWER_BITS[1] };
        assert_eq!(v.to_bits(), pinned, "power sample {i}: {v}");
    }
    assert_eq!(twin.cooling_output("pue"), Some(1.08));
    assert_eq!(twin.report().avg_pue, Some(1.08));
}

#[test]
fn l3_tracks_l4_inside_envelope_and_detects_extrapolation_outside() {
    use exadigit_core::surrogate::{generate_training_data, Surrogate};
    // Small plant for speed; train with the same settle protocol the L4
    // grid uses, inside one tower-staging regime (docs/FIDELITY.md).
    let spec = exadigit_cooling::PlantSpec::marconi100_like();
    let samples =
        generate_training_data(&spec, &[0.3, 0.6, 0.9], &[10.0, 14.0, 18.0], 400).unwrap();
    let sur = Surrogate::fit(&samples).unwrap();

    // Inside the envelope: L3 PUE within 0.01 of the L4 plant.
    let loads = [0.4, 0.75];
    let wbs = [11.0, 17.0];
    let l3 = whatif_grid(&spec, &Fidelity::Surrogate(sur.clone()), &loads, &wbs).unwrap();
    let l4 = whatif_grid(&spec, &Fidelity::Plant, &loads, &wbs).unwrap();
    assert_eq!(l3.extrapolations, 0);
    for (a, b) in l3.points.iter().zip(&l4.points) {
        assert!(
            (a.pue - b.pue).abs() < 0.01,
            "({}, {}): L3 {} vs L4 {}",
            a.load_fraction,
            a.wet_bulb_c,
            a.pue,
            b.pue
        );
    }

    // Outside it: answered, but flagged — never a panic.
    let outside =
        whatif_grid(&spec, &Fidelity::Surrogate(sur), &[0.6, 1.3], &[14.0, 30.0]).unwrap();
    assert_eq!(outside.extrapolations, 3, "three of four points lie outside the envelope");
    assert!(outside.points.iter().all(|p| p.pue.is_finite()));
}

#[test]
fn surrogate_twin_counts_extrapolation_across_the_boundary() {
    use exadigit_core::surrogate::{Sample, Surrogate};
    // A surrogate trained only up to 40 % load; the golden workload
    // pushes past it, so every loaded cooling step is an extrapolation
    // and the counter must say so through the FMI boundary.
    let mut samples = Vec::new();
    for li in 0..4 {
        for wi in 0..4 {
            let l = 0.05 + 0.1 * li as f64; // envelope tops out at 0.35
            let w = 5.0 + 7.0 * wi as f64;
            samples.push(Sample {
                load_fraction: l,
                wet_bulb_c: w,
                pue: 1.04 + 0.02 * l,
                cooling_power_w: 3.0e5,
            });
        }
    }
    let sur = Surrogate::fit(&samples).unwrap();
    let twin = golden_run(CoolingBackend::Surrogate(SurrogateSource::Fitted(sur)));
    let count = twin.cooling_output("surrogate.extrapolation_count").unwrap();
    assert!(count > 0.0, "loaded run outside a 0.35-load envelope must be counted");
    // And the run still completed with finite outputs.
    assert!(twin.report().avg_pue.unwrap().is_finite());
}

#[test]
fn fitted_surrogate_config_round_trips_as_json() {
    use exadigit_core::surrogate::{Sample, Surrogate};
    let samples: Vec<Sample> = (0..9)
        .map(|i| Sample {
            load_fraction: 0.2 + 0.08 * i as f64,
            wet_bulb_c: 6.0 + 2.0 * i as f64,
            pue: 1.05 + 0.01 * i as f64,
            cooling_power_w: 1e5 + 1e4 * i as f64,
        })
        .collect();
    let sur = Surrogate::fit(&samples).unwrap();
    let cfg = TwinConfig::frontier()
        .with_backend(CoolingBackend::Surrogate(SurrogateSource::Fitted(sur)));
    let back = TwinConfig::from_json(&cfg.to_json()).unwrap();
    assert_eq!(cfg, back);
}

/// Online-trained L3 vs the L4 plant, golden-style: after watching a
/// steady operating point, the trainer's trusted fit must agree with
/// the offline settle protocol's steady-state PUE to < 0.01; a
/// wet-bulb excursion across the tower-staging cliff leaves the trusted
/// envelope and must fall back to the L4 plant — the fallback answer
/// *is* the plant's, bit for bit, never an extrapolated polynomial.
#[test]
fn online_trained_l3_agrees_with_l4_and_falls_back_across_the_staging_cliff() {
    use exadigit_core::online::{OnlineCoolingModel, OnlineSurrogateConfig};
    use exadigit_core::surrogate::generate_training_data;
    use exadigit_sim::fmi::{CoSimModel, VarRef};

    let spec = exadigit_cooling::PlantSpec::marconi100_like();
    let config = OnlineSurrogateConfig {
        min_samples: 10,
        steady_steps: 4,
        sample_stride: 1,
        refit_every: 10,
        fallback_settle_steps: 20,
        ..OnlineSurrogateConfig::default()
    };
    let mut online = OnlineCoolingModel::new(&spec, config).unwrap();
    online.setup(0.0);

    let n = spec.num_cdus;
    let drive = |m: &mut OnlineCoolingModel, load: f64, wb: f64, quanta: usize| {
        let heat = spec.heat_per_cdu_w() * load;
        for i in 0..n {
            m.set_real(VarRef(i as u32), heat).unwrap();
        }
        m.set_real(VarRef(n as u32), wb).unwrap();
        m.set_real(VarRef((n + 1) as u32), heat * n as f64 / 0.945).unwrap();
        for k in 0..quanta {
            m.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
    };

    // Hold one operating point until the regime earns trust.
    drive(&mut online, 0.6, 15.0, 150);
    assert!(online.trusted_regimes() >= 1, "steady plateau must earn trust");
    assert!(online.l3_steps() > 0, "trusted regime must serve L3");

    // Golden reference: the offline settle protocol at the same point.
    let reference =
        generate_training_data(&spec, &[0.6], &[15.0], 400).unwrap()[0].pue;
    let pue_vr = online.var_by_name("pue").unwrap().vr;
    let online_pue = online.get_real(pue_vr).unwrap();
    assert!(
        (online_pue - reference).abs() < 0.01,
        "online L3 {online_pue} vs offline-settled L4 {reference}"
    );

    // Cross the staging cliff: a hot excursion leaves the trusted
    // envelope, so the trainer must pay L4 rather than extrapolate.
    let (l4_before, fb_before) = (online.l4_steps(), online.fallback_steps());
    drive(&mut online, 0.6, 26.0, 6);
    assert!(
        online.l4_steps() > l4_before,
        "a query outside the trained wet-bulb envelope must step the plant"
    );
    assert!(
        online.fallback_steps() > fb_before,
        "the excursion must be counted as a fallback"
    );
    // The fallback answer is the embedded plant's own output, verbatim.
    let plant_pue = online.plant().output_by_name("pue").unwrap();
    assert_eq!(online.get_real(pue_vr).unwrap().to_bits(), plant_pue.to_bits());
    assert!(plant_pue.is_finite() && plant_pue > 1.0);
}

/// The event kernel may collapse a steady gap's cooling quanta into one
/// `repeat_step` when the online backend is serving a trusted fit
/// (`CoSimModel::quasi_static`). That batching must be invisible: a
/// cooled replay through `run_until` must match the per-second loop
/// bit-for-bit — same PUE trace, same power series, same L3/L4 split —
/// across the whole train-then-serve arc.
#[test]
fn online_backend_event_kernel_matches_per_second_bit_for_bit() {
    use exadigit_core::online::{OnlineCoolingModel, OnlineSurrogateConfig};
    use exadigit_raps::config::SystemConfig;
    use exadigit_raps::power::PowerDelivery;
    use exadigit_raps::scheduler::Policy;
    use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
    use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};

    const HORIZON_S: u64 = 4 * 3_600;
    let spec = exadigit_cooling::PlantSpec::frontier();
    // Test-speed knobs: earn trust inside the horizon so the run covers
    // L4 training, the L3 switchover, and batched trusted gaps.
    let config = OnlineSurrogateConfig {
        min_samples: 10,
        steady_steps: 4,
        sample_stride: 1,
        refit_every: 10,
        fallback_settle_steps: 10,
        ..OnlineSurrogateConfig::default()
    };
    let jobs = WorkloadGenerator::new(
        WorkloadParams {
            runtime_mean_s: 2.0 * 3600.0,
            runtime_std_s: 0.5 * 3600.0,
            ..WorkloadParams::default()
        },
        41,
    )
    .generate_day(0);

    let run = |event_mode: bool| {
        let mut sim = RapsSimulation::new(
            SystemConfig::frontier(),
            PowerDelivery::StandardAC,
            Policy::FirstFit,
            15,
        );
        let model = OnlineCoolingModel::new(&spec, config.clone()).unwrap();
        let coupling =
            CoolingCoupling::attach(Box::new(model), spec.num_cdus).unwrap();
        sim.attach_cooling(coupling);
        sim.submit_jobs(jobs.clone());
        if event_mode {
            sim.run_until(HORIZON_S).unwrap();
        } else {
            sim.run_until_per_second(HORIZON_S).unwrap();
        }
        sim
    };
    let event = run(true);
    let tick = run(false);

    let read = |sim: &RapsSimulation, name: &str| {
        let model = sim.cooling_model().expect("cooling attached");
        let vr = model.var_by_name(name).expect("online local").vr;
        model.get_real(vr).unwrap()
    };
    // The arc actually exercised both fidelities and the batched path
    // has trusted gaps to collapse.
    assert!(read(&event, "online.l3_steps") > 0.0, "no trusted serving in the horizon");
    assert!(read(&event, "online.l4_steps") > 0.0, "no training in the horizon");
    for counter in ["online.l3_steps", "online.l4_steps", "online.fallback_steps"] {
        assert_eq!(
            read(&event, counter),
            read(&tick, counter),
            "kernels disagree on {counter}"
        );
    }
    let (oe, ot) = (event.outputs(), tick.outputs());
    assert_eq!(oe.pue.len(), ot.pue.len(), "pue sample counts differ");
    for (i, (a, b)) in oe.pue.samples().zip(ot.pue.samples()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "pue sample {i} differs");
    }
    for (name, a, b) in [
        ("system_power_w", &oe.system_power_w, &ot.system_power_w),
        ("utilization", &oe.utilization, &ot.utilization),
    ] {
        assert_eq!(a.len(), b.len(), "{name} sample counts differ");
        for (i, (x, y)) in a.samples().zip(b.samples()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{name} sample {i} differs");
        }
    }
    assert_eq!(event.report().jobs_completed, tick.report().jobs_completed);
}
