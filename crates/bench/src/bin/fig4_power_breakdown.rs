//! Regenerates **Fig. 4** of the paper: "Frontier power utilization
//! breakdown based on peak CPU/GPU utilization of its 9472 nodes"
//! (28.2 MW total at peak).

use exadigit_bench::{mw, section};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::{PowerDelivery, PowerModel};

fn main() {
    section("Fig. 4 — Frontier power utilization breakdown at peak");
    let model = PowerModel::new(SystemConfig::frontier(), PowerDelivery::StandardAC);
    let snap = model.uniform_power(1.0, 1.0);
    let b = snap.breakdown;

    let rows = [
        ("GPUs (4 × MI250X per node)", b.gpus_w),
        ("CPUs (Trento)", b.cpus_w),
        ("Conversion losses", b.losses_w),
        ("NICs", b.nics_w),
        ("RAM", b.ram_w),
        ("Switches (Slingshot)", b.switches_w),
        ("NVMe", b.nvme_w),
        ("CDU pumps", b.cdu_pumps_w),
    ];
    let total = snap.system_w;
    println!("  {:<30} {:>9} {:>8}   bar", "component", "MW", "share");
    for (name, w) in rows {
        let share = 100.0 * w / total;
        let bar = "█".repeat((share * 1.5).round() as usize);
        println!("  {name:<30} {:>9.3} {share:>7.2} %  {bar}", mw(w));
    }
    println!("  {:<30} {:>9.3} {:>8}", "TOTAL", mw(total), "100 %");
    println!("\n  paper: 28.2 MW total at peak; GPUs dominate (~75 %),");
    println!("  losses ≈ 1.8 MW max (Finding 9).");

    assert!((mw(total) - 28.2).abs() < 0.15, "total {} MW", mw(total));
    let sum = b.total_w();
    assert!((sum - total).abs() < 1.0, "breakdown must sum to the total");
    println!("  breakdown sums to system power ✓");
}
