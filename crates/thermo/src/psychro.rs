//! Psychrometrics for the cooling towers.
//!
//! The only weather input of the paper's cooling model is the outdoor
//! wet-bulb temperature (§III-C4). The tower model needs the enthalpy of
//! saturated moist air along the water operating line, plus the effective
//! "saturation specific heat" used by Braun's ε-NTU tower formulation.
//! Correlations follow ASHRAE Fundamentals (Magnus-type saturation
//! pressure); all temperatures are °C, pressure is Pa, enthalpy is J/kg of
//! dry air.

/// Standard atmospheric pressure, Pa.
pub const P_ATM: f64 = 101_325.0;

/// Saturation vapour pressure over liquid water (Pa) at temperature `t`
/// (°C), Magnus–Tetens form. Valid −40…+60 °C; error < 0.3 % over 0–50 °C.
pub fn saturation_pressure(t: f64) -> f64 {
    610.94 * ((17.625 * t) / (t + 243.04)).exp()
}

/// Humidity ratio (kg water vapour / kg dry air) of saturated air at
/// temperature `t` (°C) and pressure `p` (Pa).
pub fn saturation_humidity_ratio(t: f64, p: f64) -> f64 {
    let pws = saturation_pressure(t);
    0.621_945 * pws / (p - pws)
}

/// Specific enthalpy of saturated moist air (J/kg dry air) at `t` (°C).
pub fn saturated_air_enthalpy(t: f64) -> f64 {
    let w = saturation_humidity_ratio(t, P_ATM);
    moist_air_enthalpy(t, w)
}

/// Specific enthalpy of moist air (J/kg dry air) at dry-bulb `t` (°C) and
/// humidity ratio `w`.
pub fn moist_air_enthalpy(t: f64, w: f64) -> f64 {
    1006.0 * t + w * (2_501_000.0 + 1860.0 * t)
}

/// Effective "saturation specific heat" (J/kg·K): slope of the saturated
/// air enthalpy curve between two temperatures. Braun's ε-NTU tower model
/// treats the air stream as a fictitious fluid with this specific heat.
pub fn saturation_specific_heat(t_low: f64, t_high: f64) -> f64 {
    let (lo, hi) = if t_high > t_low { (t_low, t_high) } else { (t_high, t_low) };
    let dt = (hi - lo).max(0.1);
    (saturated_air_enthalpy(hi) - saturated_air_enthalpy(lo)) / dt
}

/// Density of dry air (kg/m³) at `t` (°C), ideal-gas at standard pressure.
pub fn air_density(t: f64) -> f64 {
    P_ATM / (287.055 * (t + 273.15))
}

/// A simple diurnal wet-bulb temperature profile used by the synthetic
/// weather generator: sinusoid with minimum at 06:00 and maximum at 15:00,
/// the typical continental summer shape for East Tennessee.
pub fn diurnal_wet_bulb(mean: f64, amplitude: f64, day_fraction: f64) -> f64 {
    use std::f64::consts::PI;
    // Phase chosen so the peak lands at ~15:00 (day_fraction 0.625).
    mean + amplitude * (2.0 * PI * (day_fraction - 0.375)).sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_pressure_reference_points() {
        // Reference: 2339 Pa @ 20 °C, 7384 Pa @ 40 °C (steam tables).
        assert!((saturation_pressure(20.0) - 2339.0).abs() < 15.0);
        assert!((saturation_pressure(40.0) - 7384.0).abs() < 40.0);
    }

    #[test]
    fn humidity_ratio_reference() {
        // Saturated air at 25 °C, 1 atm: w ≈ 0.0202.
        let w = saturation_humidity_ratio(25.0, P_ATM);
        assert!((w - 0.0202).abs() < 0.0005, "w={w}");
    }

    #[test]
    fn enthalpy_reference() {
        // Saturated air at 20 °C: h ≈ 57.5 kJ/kg dry air.
        let h = saturated_air_enthalpy(20.0);
        assert!((h - 57_500.0).abs() < 1_500.0, "h={h}");
    }

    #[test]
    fn saturation_cs_increases_with_temperature() {
        let cs_low = saturation_specific_heat(10.0, 20.0);
        let cs_high = saturation_specific_heat(25.0, 35.0);
        assert!(cs_high > cs_low);
        // Typical magnitude: 3-7 kJ/kg-K over tower operating range.
        assert!(cs_low > 2_000.0 && cs_high < 9_000.0);
    }

    #[test]
    fn air_density_reference() {
        assert!((air_density(20.0) - 1.204).abs() < 0.005);
    }

    #[test]
    fn diurnal_profile_peaks_mid_afternoon() {
        let mean = 18.0;
        let amp = 4.0;
        let at_peak = diurnal_wet_bulb(mean, amp, 0.625);
        let at_trough = diurnal_wet_bulb(mean, amp, 0.125);
        assert!((at_peak - (mean + amp)).abs() < 1e-9);
        assert!((at_trough - (mean - amp)).abs() < 1e-9);
    }

    #[test]
    fn diurnal_profile_mean_preserved() {
        let n = 288;
        let sum: f64 =
            (0..n).map(|i| diurnal_wet_bulb(15.0, 5.0, i as f64 / n as f64)).sum();
        assert!((sum / n as f64 - 15.0).abs() < 1e-6);
    }
}
