//! Poisson job arrivals.
//!
//! §III-B4 of the paper: "RUNSIMULATION submits jobs to the queue according
//! to a Poisson process, where an exponential distribution is used to model
//! the time between job arrivals", eq. (5): `τ = −ln(1−U)/λ` with
//! `λ = 1/t_avg` estimated from telemetry.

use exadigit_sim::Rng;

/// A Poisson arrival process parameterised by the mean inter-arrival time.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean inter-arrival time `t_avg`, seconds.
    pub t_avg_s: f64,
}

impl PoissonArrivals {
    /// Process with mean inter-arrival `t_avg_s` seconds.
    pub fn new(t_avg_s: f64) -> Self {
        assert!(t_avg_s > 0.0);
        PoissonArrivals { t_avg_s }
    }

    /// Rate λ = 1/t_avg (arrivals per second).
    pub fn lambda(&self) -> f64 {
        1.0 / self.t_avg_s
    }

    /// Draw the next inter-arrival interval (eq. 5), seconds.
    pub fn next_interval(&self, rng: &mut Rng) -> f64 {
        rng.exponential(self.lambda())
    }

    /// All arrival times in `[0, horizon_s)`, in ascending order.
    pub fn arrivals_within(&self, rng: &mut Rng, horizon_s: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity((horizon_s / self.t_avg_s * 1.2) as usize + 4);
        let mut t = self.next_interval(rng);
        while t < horizon_s {
            out.push(t);
            t += self.next_interval(rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_interval_matches_tavg() {
        let p = PoissonArrivals::new(138.0); // Table IV average
        let mut rng = Rng::new(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| p.next_interval(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 138.0).abs() < 3.0, "mean={mean}");
    }

    #[test]
    fn count_in_day_near_expectation() {
        let p = PoissonArrivals::new(55.0);
        let mut rng = Rng::new(7);
        let arr = p.arrivals_within(&mut rng, 86_400.0);
        let expected = 86_400.0 / 55.0;
        assert!(
            (arr.len() as f64 - expected).abs() < 4.0 * expected.sqrt(),
            "n={} expected≈{expected}",
            arr.len()
        );
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let p = PoissonArrivals::new(100.0);
        let mut rng = Rng::new(3);
        let arr = p.arrivals_within(&mut rng, 10_000.0);
        for w in arr.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(arr.iter().all(|&t| (0.0..10_000.0).contains(&t)));
    }

    #[test]
    fn interval_variance_is_exponential() {
        // For an exponential distribution the std equals the mean.
        let p = PoissonArrivals::new(60.0);
        let mut rng = Rng::new(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| p.next_interval(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - mean).abs() / mean < 0.03);
    }
}
