//! Centrifugal pump model.
//!
//! Frontier's plant has three pump families (Fig. 5 of the paper): four
//! cooling-tower water pumps (CTWP1-4, ~9000-10000 gpm), four high-
//! temperature water pumps (HTWP1-4, ~5000-6000 gpm) and one pump per CDU.
//! Each is modelled with a quadratic head curve scaled by the affinity
//! laws, a quadratic efficiency curve peaking at the best-efficiency point,
//! and a motor/VFD efficiency — enough to reproduce the pump power and
//! speed outputs the cooling model reports per step (§III-C4).

use crate::fluid::Fluid;
use serde::{Deserialize, Serialize};

/// Standard gravity, m/s².
const G: f64 = 9.806_65;

/// A variable-speed centrifugal pump.
///
/// Head curve at rated speed: `H(Q) = h_shutoff − k_h · Q²` (metres of
/// fluid column). Affinity laws under relative speed `s ∈ [0, 1]`:
/// `H(Q, s) = s² · h_shutoff − k_h · Q²`, BEP flow scales with `s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pump {
    /// Identifier used in output registries, e.g. `HTWP2`.
    pub name: String,
    /// Shutoff head at rated speed, m.
    pub shutoff_head_m: f64,
    /// Head-curve quadratic coefficient, m/(m³/s)².
    pub head_coeff: f64,
    /// Best-efficiency-point flow at rated speed, m³/s.
    pub bep_flow_m3s: f64,
    /// Peak hydraulic efficiency at the BEP (0..1).
    pub peak_efficiency: f64,
    /// Combined motor + VFD efficiency (0..1).
    pub motor_efficiency: f64,
    /// Pumped fluid.
    pub fluid: Fluid,
}

impl Pump {
    /// Construct a pump from a design point: it delivers `design_flow_m3s`
    /// at `design_head_m` when running at rated speed, with the shutoff
    /// head 30 % above design head (a typical centrifugal characteristic).
    pub fn from_design_point(
        name: impl Into<String>,
        design_flow_m3s: f64,
        design_head_m: f64,
        peak_efficiency: f64,
    ) -> Self {
        assert!(design_flow_m3s > 0.0 && design_head_m > 0.0);
        let shutoff = 1.3 * design_head_m;
        let k = (shutoff - design_head_m) / (design_flow_m3s * design_flow_m3s);
        Pump {
            name: name.into(),
            shutoff_head_m: shutoff,
            head_coeff: k,
            bep_flow_m3s: design_flow_m3s,
            peak_efficiency,
            motor_efficiency: 0.93,
            fluid: Fluid::Water,
        }
    }

    /// Head (m) produced at flow `q` (m³/s) and relative speed `s`.
    /// Clamped at zero (no negative head; check valves prevent reverse flow).
    pub fn head(&self, q: f64, s: f64) -> f64 {
        if s <= 0.0 {
            return 0.0;
        }
        (s * s * self.shutoff_head_m - self.head_coeff * q * q).max(0.0)
    }

    /// Pressure rise (Pa) at flow `q` (m³/s), speed `s`, temperature `t` °C.
    pub fn pressure_rise(&self, q: f64, s: f64, t: f64) -> f64 {
        self.fluid.density(t) * G * self.head(q, s)
    }

    /// Derivative of pressure rise with respect to flow, Pa/(m³/s) — used
    /// by the Newton hydraulic solver.
    pub fn dpressure_dflow(&self, q: f64, s: f64, t: f64) -> f64 {
        if s <= 0.0 || self.head(q, s) <= 0.0 {
            return 0.0;
        }
        -2.0 * self.fluid.density(t) * G * self.head_coeff * q
    }

    /// Hydraulic efficiency at flow `q` and speed `s`: quadratic in the
    /// speed-normalised flow, peaking at the BEP.
    pub fn efficiency(&self, q: f64, s: f64) -> f64 {
        if s <= 0.0 {
            return 0.0;
        }
        let qn = q / (self.bep_flow_m3s * s);
        // η(qn) = η_peak · (2·qn − qn²) peaks at qn = 1 with value η_peak.
        (self.peak_efficiency * (2.0 * qn - qn * qn)).clamp(0.01, self.peak_efficiency)
    }

    /// Electrical power drawn (W) at flow `q` (m³/s), speed `s`, temp `t` °C.
    /// Includes a small standby term so an idling, spinning pump is not free.
    pub fn electrical_power(&self, q: f64, s: f64, t: f64) -> f64 {
        if s <= 0.0 {
            return 0.0;
        }
        let hydraulic = self.fluid.density(t) * G * self.head(q, s) * q.max(0.0);
        let shaft = hydraulic / self.efficiency(q, s);
        // Windage/bearing losses scale with the cube of speed.
        let standby = 0.02 * self.rated_power() * s * s * s;
        shaft / self.motor_efficiency + standby
    }

    /// Nominal electrical power at the design point (W).
    pub fn rated_power(&self) -> f64 {
        let t = 25.0;
        let q = self.bep_flow_m3s;
        let h = self.head(q, 1.0);
        self.fluid.density(t) * G * h * q / (self.peak_efficiency * self.motor_efficiency)
    }

    /// Flow at which the pump curve intersects a system curve
    /// `ΔP_sys = k_sys · Q²` (Pa), at speed `s` and temperature `t`.
    /// Closed form for the quadratic/quadratic intersection.
    pub fn operating_flow(&self, k_sys: f64, s: f64, t: f64) -> f64 {
        if s <= 0.0 {
            return 0.0;
        }
        let rho_g = self.fluid.density(t) * G;
        // rho_g (s² h0 - k_h q²) = k_sys q²
        let num = rho_g * s * s * self.shutoff_head_m;
        let den = k_sys + rho_g * self.head_coeff;
        (num / den).max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::gpm_to_m3s;

    fn htwp() -> Pump {
        // HTWP design: ~5500 gpm at ~30 m head (paper: 5000-6000 gpm).
        Pump::from_design_point("HTWP1", gpm_to_m3s(5500.0), 30.0, 0.82)
    }

    #[test]
    fn head_at_design_point() {
        let p = htwp();
        let q = gpm_to_m3s(5500.0);
        assert!((p.head(q, 1.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn shutoff_head_higher_than_design() {
        let p = htwp();
        assert!((p.head(0.0, 1.0) - 39.0).abs() < 1e-9);
    }

    #[test]
    fn affinity_scaling_halves_head_at_half_speed_zero_flow() {
        let p = htwp();
        assert!((p.head(0.0, 0.5) - 39.0 * 0.25).abs() < 1e-9);
    }

    #[test]
    fn efficiency_peaks_at_bep() {
        let p = htwp();
        let q_bep = p.bep_flow_m3s;
        let at_bep = p.efficiency(q_bep, 1.0);
        assert!((at_bep - 0.82).abs() < 1e-9);
        assert!(p.efficiency(q_bep * 0.5, 1.0) < at_bep);
        assert!(p.efficiency(q_bep * 1.4, 1.0) < at_bep);
    }

    #[test]
    fn power_is_positive_and_plausible() {
        let p = htwp();
        let q = p.bep_flow_m3s;
        let w = p.electrical_power(q, 1.0, 25.0);
        // ρgQH/η ≈ 1000*9.81*0.347*30/0.82/0.93 ≈ 134 kW
        assert!(w > 100_000.0 && w < 200_000.0, "w={w}");
    }

    #[test]
    fn zero_speed_draws_nothing() {
        let p = htwp();
        assert_eq!(p.electrical_power(0.1, 0.0, 25.0), 0.0);
        assert_eq!(p.head(0.1, 0.0), 0.0);
    }

    #[test]
    fn operating_flow_balances_system_curve() {
        let p = htwp();
        let k_sys = 1.0e6; // Pa/(m³/s)²
        let q = p.operating_flow(k_sys, 1.0, 25.0);
        let dp_pump = p.pressure_rise(q, 1.0, 25.0);
        let dp_sys = k_sys * q * q;
        assert!((dp_pump - dp_sys).abs() / dp_sys < 1e-9, "q={q}");
    }

    #[test]
    fn operating_flow_drops_with_speed() {
        let p = htwp();
        let k_sys = 1.0e6;
        let q_full = p.operating_flow(k_sys, 1.0, 25.0);
        let q_half = p.operating_flow(k_sys, 0.5, 25.0);
        assert!((q_half - 0.5 * q_full).abs() / q_full < 1e-9);
    }

    #[test]
    fn rated_power_close_to_bep_power() {
        let p = htwp();
        let rated = p.rated_power();
        let actual = p.electrical_power(p.bep_flow_m3s, 1.0, 25.0);
        assert!((actual - rated).abs() / rated < 0.05);
    }
}
