//! A minimal plain-HTTP exposition sidecar.
//!
//! [`HttpExporter`] serves `GET /metrics` (Prometheus text format,
//! rendered by a caller-supplied closure) from one background thread.
//! It is deliberately *not* a web framework: one request per
//! connection, `Connection: close`, a read timeout so a stalled
//! scraper cannot park the thread, and the same connect-to-self wake
//! trick the serving tier uses for shutdown. Scrapes are low-rate by
//! design (seconds apart), so a single blocking accept loop is the
//! right amount of machinery.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics HTTP listener (joined on [`HttpExporter::shutdown`]
/// or drop).
pub struct HttpExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl HttpExporter {
    /// Bind `addr` (port 0 for OS-assigned) and serve `GET /metrics`
    /// with the text `render` produces. The closure runs on the
    /// exporter thread once per scrape.
    pub fn serve(
        addr: &str,
        render: impl Fn() -> String + Send + 'static,
    ) -> std::io::Result<HttpExporter> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let join = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, render, stop))
        };
        Ok(HttpExporter { addr, stop, join: Some(join) })
    }

    /// The bound address (point the scraper here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept; an error just means the listener
        // already went away.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for HttpExporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, render: impl Fn() -> String, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = handle_scrape(stream, &render);
    }
}

/// Read one HTTP request head and answer it. Anything that is not
/// `GET /metrics` (or `GET /`) gets a 404; a malformed or stalled
/// request is dropped.
fn handle_scrape(mut stream: TcpStream, render: &impl Fn() -> String) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (or 8 KiB — scrape
    // requests have no body worth reading).
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8 * 1024 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).to_string())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path == "/") {
        let body = render();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "not found; scrape /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        // Skip headers, then read the body to EOF (Connection: close).
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            if line == "\r\n" {
                break;
            }
            line.clear();
        }
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let exporter =
            HttpExporter::serve("127.0.0.1:0", || "demo_metric 1\n".to_string()).unwrap();
        let (status, body) = get(exporter.addr(), "/metrics");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        assert_eq!(body, "demo_metric 1\n");
        let (status, _) = get(exporter.addr(), "/nope");
        assert!(status.starts_with("HTTP/1.1 404"), "{status}");
        // Each scrape re-renders.
        let (_, body) = get(exporter.addr(), "/metrics");
        assert_eq!(body, "demo_metric 1\n");
        exporter.shutdown();
    }

    #[test]
    fn shutdown_joins_the_thread() {
        let exporter = HttpExporter::serve("127.0.0.1:0", String::new).unwrap();
        let addr = exporter.addr();
        exporter.shutdown();
        // The listener is gone: connecting may succeed at the TCP level
        // transiently but a scrape gets no response.
        let mut ok = false;
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = write!(s, "GET /metrics HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
            ok = s.read_to_string(&mut out).map(|n| n > 0).unwrap_or(false);
        }
        assert!(!ok, "no scrape is served after shutdown");
    }
}
