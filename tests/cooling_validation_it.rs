//! Fig. 7 style cooling validation: replay synthetic telemetry through
//! the nominal cooling model and compare the predicted channels against
//! the "measured" (perturbed-twin) channels.
//!
//! Paper criteria: RMSE/MAE "within reasonable bounds" for CDU flows,
//! return temperatures and HTW supply pressure; model PUE within 1.4 % of
//! the telemetry PUE.

use exadigit_cooling::CoolingModel;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_sim::TimeSeries;
use exadigit_telemetry::{compare_channels, SyntheticTwin};

/// Record a 2-hour fragment of synthetic telemetry, replay the same heat
/// inputs through the nominal model, and return (predicted, measured)
/// channel pairs.
fn validation_run() -> (Vec<(String, TimeSeries, TimeSeries)>, f64) {
    const SPAN_S: u64 = 7_200;
    let twin = SyntheticTwin::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 7_777);
    let jobs: Vec<_> = generator
        .generate_day(0)
        .into_iter()
        .filter(|j| j.submit_time_s < SPAN_S)
        .collect();
    let telemetry = twin.record_span(jobs.clone(), SPAN_S, 0);

    // Replay: drive the *nominal* plant with the nominal power model's CDU
    // heats for the same jobs (the validation study of §IV feeds measured
    // rack power into the model; our replay recomputes it from the same
    // job set through the unperturbed RAPS).
    let mut sim = exadigit_raps::simulation::RapsSimulation::new(
        exadigit_raps::config::SystemConfig::frontier(),
        exadigit_raps::power::PowerDelivery::StandardAC,
        exadigit_raps::scheduler::Policy::FirstFit,
        15,
    );
    let model = CoolingModel::frontier();
    let coupling =
        exadigit_raps::simulation::CoolingCoupling::attach(Box::new(model), 25).unwrap();
    sim.attach_cooling(coupling);
    sim.set_wet_bulb(telemetry.wet_bulb.clone());
    sim.submit_jobs(jobs);

    let mut pred_flow = TimeSeries::new(0.0, 15.0);
    let mut pred_temp = TimeSeries::new(0.0, 15.0);
    let mut pred_press = TimeSeries::new(0.0, 30.0);
    let mut pred_pue = TimeSeries::new(0.0, 15.0);
    let (vr_flow, vr_temp, vr_press, vr_pue) = {
        let m = sim.cooling_model().unwrap();
        (
            m.var_by_name("cdu[1].primary_flow").unwrap().vr,
            m.var_by_name("cdu[1].primary_return_temp").unwrap().vr,
            m.var_by_name("facility.htw_supply_pressure").unwrap().vr,
            m.var_by_name("pue").unwrap().vr,
        )
    };
    for sec in 0..SPAN_S {
        sim.tick().unwrap();
        let t = sec + 1;
        let m = sim.cooling_model().unwrap();
        if t % 15 == 0 {
            pred_flow.push(m.get_real(vr_flow).unwrap());
            pred_temp.push(m.get_real(vr_temp).unwrap());
            pred_pue.push(m.get_real(vr_pue).unwrap());
        }
        if t % 30 == 0 {
            pred_press.push(m.get_real(vr_press).unwrap());
        }
    }

    let pairs = vec![
        ("cdu[1].primary_flow".to_string(), pred_flow, telemetry.cooling.cdu_primary_flow[0].clone()),
        ("cdu[1].primary_return_temp".to_string(), pred_temp, telemetry.cooling.cdu_return_temp[0].clone()),
        ("facility.htw_supply_pressure".to_string(), pred_press, telemetry.cooling.htw_supply_pressure.clone()),
    ];
    // PUE handled separately for the 1.4 % criterion.
    let skip = 1_800.0; // model spin-up
    let pue_cmp = compare_channels("pue", &pred_pue, &telemetry.cooling.pue, skip);
    (pairs, pue_cmp.mean_bias_percent().abs())
}

#[test]
fn fig7_channels_within_reasonable_bounds() {
    let (pairs, pue_bias) = validation_run();
    let skip = 1_800.0;
    for (name, predicted, measured) in &pairs {
        let cmp = compare_channels(name.clone(), predicted, measured, skip);
        // Normalised RMSE under 15 % for every validated channel — the
        // synthetic twin is deliberately perturbed, so zero error would
        // itself be a bug.
        let nrmse = cmp.nrmse_percent();
        assert!(nrmse < 15.0, "{name}: nRMSE {nrmse:.2} % (rmse {:.4})", cmp.rmse);
        assert!(cmp.rmse > 0.0, "{name}: suspiciously perfect agreement");
    }
    // Fig. 7(d): PUE within 1.4 % in the paper; allow 2 % here.
    assert!(pue_bias < 2.0, "PUE bias {pue_bias:.2} %");
}

#[test]
fn cdu_return_temperature_mae_in_band() {
    let (pairs, _) = validation_run();
    let (_, predicted, measured) =
        pairs.iter().find(|(n, _, _)| n.contains("return_temp")).unwrap();
    let cmp = compare_channels("temp", predicted, measured, 1_800.0);
    // Return-temperature MAE within a couple of kelvin.
    assert!(cmp.mae < 2.5, "MAE {} K", cmp.mae);
}
