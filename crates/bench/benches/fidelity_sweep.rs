//! Fidelity-backend payoff: the same what-if grid at L3 vs L4.
//!
//! The paper motivates L3 surrogates because they "run in real-time";
//! this bench quantifies the claim on the backend layer: a 16-point
//! (load × wet-bulb) grid evaluated by settling the comprehensive L4
//! plant at every point versus serving every point from the fitted
//! surrogate. The acceptance target is L3 ≥10× faster than L4 (in
//! practice it is orders of magnitude beyond that — polynomial
//! evaluation versus 400 transient plant steps per point). Surrogate
//! *training* is a one-off L4 cost paid outside the serving path and is
//! measured separately. The first recorded baseline lives in
//! `BENCH_fidelity_sweep.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use exadigit_core::surrogate::{generate_training_data, Surrogate};
use exadigit_core::whatif::{whatif_grid, Fidelity};
use exadigit_cooling::PlantSpec;
use std::hint::black_box;
use std::time::Duration;

const LOADS: [f64; 4] = [0.35, 0.5, 0.65, 0.8];
const WET_BULBS: [f64; 4] = [11.0, 13.0, 15.0, 17.0];

fn trained_surrogate(spec: &PlantSpec) -> Surrogate {
    let samples = generate_training_data(spec, &[0.3, 0.6, 0.9], &[10.0, 14.0, 18.0], 400)
        .expect("training sweep");
    Surrogate::fit(&samples).expect("fit")
}

fn bench_fidelity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fidelity_sweep");
    group.measurement_time(Duration::from_secs(10)).sample_size(10);
    let spec = PlantSpec::marconi100_like();
    let l3 = Fidelity::Surrogate(trained_surrogate(&spec));

    group.bench_function("grid16_l4_plant", |b| {
        b.iter(|| {
            let grid = whatif_grid(&spec, &Fidelity::Plant, &LOADS, &WET_BULBS).expect("L4");
            black_box(grid.points[0].pue)
        })
    });
    group.bench_function("grid16_l3_surrogate", |b| {
        b.iter(|| {
            let grid = whatif_grid(&spec, &l3, &LOADS, &WET_BULBS).expect("L3");
            black_box(grid.points[0].pue)
        })
    });
    // The one-off cost the L3 path pays up front (16 L4 settles + fit).
    group.bench_function("l3_training_once", |b| {
        b.iter(|| black_box(trained_surrogate(&spec).pue_train_rmse))
    });
    group.finish();
}

criterion_group!(benches, bench_fidelity_sweep);
criterion_main!(benches);
