//! The service's observability hub: one [`Registry`] every layer feeds.
//!
//! [`ServiceObs`] pre-registers every hot-path instrument at
//! construction — per-request-type counters and latency histograms,
//! queue depth/wait, admission rejections, reader wakeups, cache and
//! snapshot-store instruments, and the event kernel's counters — and
//! hands the shared handles to the components that increment them
//! ([`crate::QueryCache`], [`crate::SnapshotStore`], the live twin via
//! `DigitalTwin::set_kernel_metrics`, and the worker pool). Exposition
//! (the `Metrics` verb and the Prometheus HTTP sidecar) reads the same
//! registry, so the wire, the scraper, and `Status` can never disagree.
//!
//! Cold-path gauges that mirror live-twin state (`now`, queue sizes,
//! PUE, the online backend's fidelity counters, snapshot-store memory
//! accounting) are refreshed from a [`crate::ServerStatus`] at
//! collection time rather than instrumented inline: the fidelity
//! counters are *model state* (serialized with the twin, asserted by
//! round-trip tests), so the registry mirrors them instead of owning
//! them.
//!
//! Everything here is simulation-inert by construction: instruments
//! absorb values and never feed a number back into simulation
//! arithmetic — the `observability` bit-identity tests run the same
//! twin with metrics attached, detached, and contended and require
//! every recorded f64 to match to the bit.

use crate::cache::CacheMetrics;
use crate::protocol::{Request, ServerStatus};
use crate::snapshot::StoreMetrics;
use exadigit_obs::{Registry, SlowQueryLog, TraceRing};
use exadigit_obs::{Counter, Gauge, Histogram, LATENCY_BUCKETS_S};
use exadigit_raps::metrics::KernelMetrics;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Stable request-type names, indexed by [`request_kind`]. These are
/// the `type` label values on `exadigit_requests_total` and
/// `exadigit_request_seconds`.
pub(crate) const REQUEST_KINDS: [&str; 11] = [
    "Status",
    "Advance",
    "Snapshot",
    "ListSnapshots",
    "DropSnapshot",
    "Query",
    "QueryBatch",
    "Checkpoint",
    "Persist",
    "Shutdown",
    "Metrics",
];

/// Index of a request's type in [`REQUEST_KINDS`].
pub(crate) fn request_kind(request: &Request) -> usize {
    match request {
        Request::Status => 0,
        Request::Advance { .. } => 1,
        Request::Snapshot { .. } => 2,
        Request::ListSnapshots => 3,
        Request::DropSnapshot { .. } => 4,
        Request::Query { .. } => 5,
        Request::QueryBatch { .. } => 6,
        Request::Checkpoint => 7,
        Request::Persist { .. } => 8,
        Request::Shutdown => 9,
        Request::Metrics => 10,
    }
}

/// One-line summary of a request for the slow-query log (built lazily —
/// only requests that actually crossed the threshold pay for it).
pub(crate) fn request_detail(request: &Request) -> String {
    match request {
        Request::Advance { seconds } => format!("advance {seconds} s"),
        Request::Snapshot { label } => format!("label \"{label}\""),
        Request::DropSnapshot { snapshot_id } | Request::Persist { snapshot_id } => {
            format!("snapshot {snapshot_id}")
        }
        Request::Query { snapshot_id, spec } => format!(
            "snapshot {snapshot_id}, horizon {} s, draws {}",
            spec.horizon_s, spec.draws
        ),
        Request::QueryBatch { snapshot_id, specs } => {
            format!("snapshot {snapshot_id}, {} specs", specs.len())
        }
        _ => String::new(),
    }
}

/// Default slow-query threshold: 250 ms of queue + handle time. A cache
/// hit is ~µs and a fresh single-draw query ~ms, so anything here is a
/// big ensemble, a long advance, or real congestion.
pub(crate) const DEFAULT_SLOW_QUERY_US: u64 = 250_000;

/// Trace-ring capacity: enough to hold the full lifecycle of a burst
/// (3 events per request × ~85 requests) at a few hundred bytes each.
const TRACE_CAPACITY: usize = 256;

/// Slow-query log capacity.
const SLOW_LOG_CAPACITY: usize = 32;

/// The service-wide metrics registry plus every pre-registered
/// hot-path handle.
pub(crate) struct ServiceObs {
    /// The single namespace exposition reads.
    pub registry: Registry,
    /// Hot-path master switch (`TwinService::with_observability`). Off
    /// skips timestamping, tracing, and counting — the configuration the
    /// overhead bench compares against.
    enabled: AtomicBool,
    /// `exadigit_requests_total{type}` by [`request_kind`] index.
    pub requests_total: Vec<Counter>,
    /// `exadigit_request_seconds{type}` by [`request_kind`] index.
    pub handle_seconds: Vec<Histogram>,
    /// Time admitted requests spent queued before a worker picked them
    /// up.
    pub queue_wait_seconds: Histogram,
    /// Admitted requests currently in the bounded queue.
    pub queue_depth: Gauge,
    /// `Busy` answers: connection over its in-flight cap.
    pub busy_inflight: Counter,
    /// `Busy` answers: request queue full.
    pub busy_queue_full: Counter,
    /// Reader loop iterations that made progress (bytes read or
    /// requests admitted).
    pub wakeups_productive: Counter,
    /// Reader loop iterations that found every socket idle and napped.
    pub wakeups_wasted: Counter,
    /// Requests that crossed the slow-query threshold.
    pub slow_queries_total: Counter,
    /// Query-cache handles (shared with [`crate::QueryCache`]).
    pub cache: CacheMetrics,
    /// Snapshot-store handles (shared with [`crate::SnapshotStore`]).
    pub store: StoreMetrics,
    /// Event-kernel handles (shared with the live twin and every fork).
    pub kernel: KernelMetrics,
    /// Request-lifecycle trace ring.
    pub trace: TraceRing,
    /// Threshold-gated slow-query log.
    pub slowlog: SlowQueryLog,
    /// Cached handles for the status-mirroring gauges, so the Status
    /// hot path pays one small lock + atomic stores instead of a
    /// registry name lookup per gauge per call.
    status_gauges: Mutex<StatusGauges>,
}

/// Lazily registered live-state gauge handles. All `Option`: the
/// always-present set registers on the first mirror (exposition before
/// any `Status` stays clean), the backend-dependent set on first
/// appearance (a power-only twin never shows a misleading zero for a
/// counter its backend does not have).
#[derive(Default)]
struct StatusGauges {
    base: Option<BaseStatusGauges>,
    pue: Option<Gauge>,
    surrogate_extrapolations: Option<Gauge>,
    online_l3_steps: Option<Gauge>,
    online_l4_steps: Option<Gauge>,
    online_fallback_steps: Option<Gauge>,
    online_trusted_regimes: Option<Gauge>,
}

/// The gauges every twin has, registered together on the first mirror.
struct BaseStatusGauges {
    now_seconds: Gauge,
    running_jobs: Gauge,
    pending_jobs: Gauge,
    jobs_ingested: Gauge,
    snapshots: Gauge,
    snapshots_resident: Gauge,
    snapshots_spilled: Gauge,
    snapshot_shared_bytes: Gauge,
    snapshot_owned_bytes: Gauge,
}

impl ServiceObs {
    /// Build the registry and pre-register every hot-path instrument.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests_total = REQUEST_KINDS
            .iter()
            .map(|kind| {
                registry.counter_with(
                    "exadigit_requests_total",
                    "Requests handled, by request type",
                    &[("type", kind)],
                )
            })
            .collect();
        let handle_seconds = REQUEST_KINDS
            .iter()
            .map(|kind| {
                registry.histogram_with(
                    "exadigit_request_seconds",
                    "Service handle time, by request type",
                    &[("type", kind)],
                    &LATENCY_BUCKETS_S,
                )
            })
            .collect();
        let queue_wait_seconds = registry.histogram(
            "exadigit_queue_wait_seconds",
            "Time admitted requests waited in the bounded queue",
            &LATENCY_BUCKETS_S,
        );
        let queue_depth =
            registry.gauge("exadigit_queue_depth", "Admitted requests currently queued");
        let busy_inflight = registry.counter_with(
            "exadigit_busy_total",
            "Requests refused by admission control",
            &[("reason", "inflight_cap")],
        );
        let busy_queue_full = registry.counter_with(
            "exadigit_busy_total",
            "Requests refused by admission control",
            &[("reason", "queue_full")],
        );
        let wakeups_productive = registry.counter_with(
            "exadigit_reader_wakeups_total",
            "Reader multiplexer iterations, split by whether any socket had work",
            &[("kind", "productive")],
        );
        let wakeups_wasted = registry.counter_with(
            "exadigit_reader_wakeups_total",
            "Reader multiplexer iterations, split by whether any socket had work",
            &[("kind", "wasted")],
        );
        let slow_queries_total = registry.counter(
            "exadigit_slow_queries_total",
            "Requests slower than the slow-query threshold",
        );
        let cache = CacheMetrics {
            hits: registry.counter("exadigit_cache_hits_total", "Query-cache hits"),
            misses: registry.counter("exadigit_cache_misses_total", "Query-cache misses"),
            evictions: registry
                .counter("exadigit_cache_evictions_total", "Query-cache LRU evictions"),
            entries: registry.gauge("exadigit_cache_entries", "Outcomes currently memoised"),
            bytes: registry.gauge("exadigit_cache_bytes", "Resident bytes of memoised outcomes"),
        };
        let store = StoreMetrics {
            persist_seconds: registry.histogram(
                "exadigit_snapshot_persist_seconds",
                "Time to serialize and write one snapshot to the disk tier",
                &LATENCY_BUCKETS_S,
            ),
            rehydrate_seconds: registry.histogram(
                "exadigit_snapshot_rehydrate_seconds",
                "Time to load one spilled snapshot back from the disk tier",
                &LATENCY_BUCKETS_S,
            ),
            spills: registry.counter(
                "exadigit_snapshot_spills_total",
                "Resident snapshots evicted to the disk tier by the memory cap",
            ),
        };
        let kernel_events = |kind: &str| {
            registry.counter_with(
                "exadigit_kernel_events_total",
                "Events the simulation kernel stepped, by kind",
                &[("kind", kind)],
            )
        };
        let kernel = KernelMetrics {
            job_arrivals: kernel_events("job_arrival"),
            job_completions: kernel_events("job_completion"),
            wet_bulb_breakpoints: kernel_events("wet_bulb_breakpoint"),
            cooling_quanta: kernel_events("cooling_quantum"),
            record_boundaries: kernel_events("record_boundary"),
            gaps_batched: registry.counter(
                "exadigit_kernel_gaps_batched_total",
                "Constant-power gaps the kernel absorbed in closed form",
            ),
            cooled_quanta_batched: registry.counter(
                "exadigit_kernel_cooled_quanta_batched_total",
                "Cooling quanta collapsed through quasi-static repeat_step",
            ),
            samples_backfilled: registry.counter(
                "exadigit_kernel_samples_backfilled_total",
                "Output samples materialised by closed-form backfill",
            ),
        };
        ServiceObs {
            registry,
            enabled: AtomicBool::new(true),
            requests_total,
            handle_seconds,
            queue_wait_seconds,
            queue_depth,
            busy_inflight,
            busy_queue_full,
            wakeups_productive,
            wakeups_wasted,
            slow_queries_total,
            cache,
            store,
            kernel,
            trace: TraceRing::new(TRACE_CAPACITY),
            slowlog: SlowQueryLog::new(SLOW_LOG_CAPACITY, DEFAULT_SLOW_QUERY_US),
            status_gauges: Mutex::new(StatusGauges::default()),
        }
    }

    /// Hot-path switch: true when instrumentation should run.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip the master switch (the uninstrumented arm of the overhead
    /// bench; counters keep their totals, they just stop moving).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Mirror a freshly assembled [`ServerStatus`] into the registry's
    /// live-state gauges. Optional fields (PUE, fidelity counters)
    /// register lazily on first appearance, so a power-only twin's
    /// exposition never shows a misleading zero for a counter its
    /// backend does not have. `fallback_steps` rides separately: the
    /// exposition surfaces it, but `ServerStatus` keeps its frozen wire
    /// shape.
    pub fn set_status_gauges(&self, status: &ServerStatus, fallback_steps: Option<u64>) {
        let mut cached = self.status_gauges.lock().unwrap();
        let base = cached.base.get_or_insert_with(|| BaseStatusGauges {
            now_seconds: self
                .registry
                .gauge("exadigit_live_now_seconds", "Live twin's simulated second"),
            running_jobs: self
                .registry
                .gauge("exadigit_live_running_jobs", "Jobs running on the live twin"),
            pending_jobs: self
                .registry
                .gauge("exadigit_live_pending_jobs", "Jobs queued on the live twin"),
            jobs_ingested: self
                .registry
                .gauge("exadigit_jobs_ingested", "Jobs ingested from the telemetry feed"),
            snapshots: self
                .registry
                .gauge("exadigit_snapshots", "Snapshots held across both tiers"),
            snapshots_resident: self
                .registry
                .gauge("exadigit_snapshots_resident", "Snapshots resident in memory"),
            snapshots_spilled: self
                .registry
                .gauge("exadigit_snapshots_spilled", "Snapshots held only on the disk tier"),
            snapshot_shared_bytes: self.registry.gauge(
                "exadigit_snapshot_shared_bytes",
                "Recorded-history bytes resident snapshots share by refcount",
            ),
            snapshot_owned_bytes: self.registry.gauge(
                "exadigit_snapshot_owned_bytes",
                "Recorded-history bytes uniquely owned by resident snapshots",
            ),
        });
        base.now_seconds.set(status.now_s as f64);
        base.running_jobs.set(status.running_jobs as f64);
        base.pending_jobs.set(status.pending_jobs as f64);
        base.jobs_ingested.set(status.jobs_ingested as f64);
        base.snapshots.set(status.snapshots as f64);
        base.snapshots_resident.set(status.snapshots_resident as f64);
        base.snapshots_spilled.set(status.snapshots_spilled as f64);
        base.snapshot_shared_bytes.set(status.snapshot_shared_bytes as f64);
        base.snapshot_owned_bytes.set(status.snapshot_owned_bytes as f64);
        if let Some(v) = status.pue {
            cached
                .pue
                .get_or_insert_with(|| self.registry.gauge("exadigit_pue", "Live twin's latest PUE"))
                .set(v);
        }
        if let Some(v) = status.surrogate_extrapolations {
            cached
                .surrogate_extrapolations
                .get_or_insert_with(|| {
                    self.registry.gauge(
                        "exadigit_surrogate_extrapolations",
                        "Queries the L3 surrogate answered outside its training envelope",
                    )
                })
                .set(v as f64);
        }
        if let Some(v) = status.online_l3_steps {
            cached
                .online_l3_steps
                .get_or_insert_with(|| {
                    self.registry.gauge(
                        "exadigit_online_l3_steps",
                        "Cooling quanta served from a trusted online fit",
                    )
                })
                .set(v as f64);
        }
        if let Some(v) = status.online_l4_steps {
            cached
                .online_l4_steps
                .get_or_insert_with(|| {
                    self.registry.gauge(
                        "exadigit_online_l4_steps",
                        "Cooling quanta that paid the L4 transient plant",
                    )
                })
                .set(v as f64);
        }
        if let Some(v) = fallback_steps {
            cached
                .online_fallback_steps
                .get_or_insert_with(|| {
                    self.registry.gauge(
                        "exadigit_online_fallback_steps",
                        "L4 quanta taken after trust existed (envelope misses)",
                    )
                })
                .set(v as f64);
        }
        if let Some(v) = status.online_trusted_regimes {
            cached
                .online_trusted_regimes
                .get_or_insert_with(|| {
                    self.registry.gauge(
                        "exadigit_online_trusted_regimes",
                        "Staging regimes whose online fit is currently trusted",
                    )
                })
                .set(v as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_maps_to_its_kind_name() {
        use crate::query::WhatIfSpec;
        let reqs: Vec<(Request, &str)> = vec![
            (Request::Status, "Status"),
            (Request::Advance { seconds: 1 }, "Advance"),
            (Request::Snapshot { label: "x".into() }, "Snapshot"),
            (Request::ListSnapshots, "ListSnapshots"),
            (Request::DropSnapshot { snapshot_id: 1 }, "DropSnapshot"),
            (Request::Query { snapshot_id: 1, spec: WhatIfSpec::default() }, "Query"),
            (Request::QueryBatch { snapshot_id: 1, specs: vec![] }, "QueryBatch"),
            (Request::Checkpoint, "Checkpoint"),
            (Request::Persist { snapshot_id: 1 }, "Persist"),
            (Request::Shutdown, "Shutdown"),
            (Request::Metrics, "Metrics"),
        ];
        for (req, name) in reqs {
            assert_eq!(REQUEST_KINDS[request_kind(&req)], name);
        }
    }

    #[test]
    fn hot_path_instruments_are_preregistered() {
        let obs = ServiceObs::new();
        obs.requests_total[request_kind(&Request::Status)].inc();
        obs.kernel.gaps_batched.inc();
        obs.cache.hits.inc();
        let text = obs.registry.render_prometheus();
        assert!(text.contains("exadigit_requests_total{type=\"Status\"} 1"), "{text}");
        assert!(text.contains("exadigit_kernel_gaps_batched_total 1"), "{text}");
        assert!(text.contains("exadigit_cache_hits_total 1"), "{text}");
        assert!(text.contains("exadigit_request_seconds_bucket"), "{text}");
        // Lazily registered live gauges are absent until a status is
        // mirrored.
        assert!(!text.contains("exadigit_live_now_seconds"), "{text}");
    }
}
