//! End-of-run output statistics.
//!
//! §III-B5 of the paper: "At the end of the run, a report is provided that
//! outputs statistics on: (1) the number of jobs completed, (2) the
//! throughput (jobs/hour), (3) average power consumed in MW, (4) total
//! energy consumed in MW-hr, (5) rectification and conversion losses in MW
//! (6) CO2 emissions in metric tons, and (7) total energy costs in USD."
//! CO₂ uses eq. (6): `Ef = EI × 1 t / 2204.6 lbs × 1/η_system`.

use crate::config::CostConfig;
use serde::{Deserialize, Serialize};

/// The RAPS run report (the seven §III-B5 statistics plus diagnostics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Simulated span, seconds.
    pub sim_seconds: u64,
    /// (1) Jobs completed.
    pub jobs_completed: u64,
    /// Jobs still running / pending at the end.
    pub jobs_unfinished: u64,
    /// (2) Throughput, jobs per hour.
    pub throughput_jobs_per_hour: f64,
    /// (3) Average system power, MW.
    pub avg_power_mw: f64,
    /// Peak system power observed, MW.
    pub max_power_mw: f64,
    /// (4) Total energy, MWh.
    pub total_energy_mwh: f64,
    /// (5) Average conversion loss, MW.
    pub avg_loss_mw: f64,
    /// Maximum conversion loss, MW.
    pub max_loss_mw: f64,
    /// Loss as percent of average power.
    pub loss_percent: f64,
    /// Mean conversion efficiency η_system (eq. 1).
    pub efficiency: f64,
    /// (6) CO₂ emissions, metric tons (eq. 6).
    pub co2_tons: f64,
    /// (7) Energy cost, USD.
    pub cost_usd: f64,
    /// Mean node-allocation utilization (active / total nodes).
    pub avg_utilization: f64,
    /// Mean PUE when a cooling model was attached.
    pub avg_pue: Option<f64>,
    /// Mean job queue wait, seconds.
    pub avg_wait_s: f64,
}

impl RunReport {
    /// Eq. (6) emission factor, metric tons CO₂ per MWh of consumed energy.
    pub fn emission_factor(costs: &CostConfig, efficiency: f64) -> f64 {
        costs.emission_lbs_per_mwh / 2_204.6 / efficiency.max(1e-6)
    }

    /// CO₂ emissions (t) for `energy_mwh` at conversion efficiency `eta`.
    pub fn co2_for(costs: &CostConfig, energy_mwh: f64, eta: f64) -> f64 {
        energy_mwh * Self::emission_factor(costs, eta)
    }

    /// Energy cost in USD.
    pub fn cost_for(costs: &CostConfig, energy_mwh: f64) -> f64 {
        energy_mwh * costs.usd_per_mwh
    }

    /// Annualise a value measured over this run (scale to 365 days).
    pub fn annualize(&self, value_per_run: f64) -> f64 {
        if self.sim_seconds == 0 {
            return 0.0;
        }
        value_per_run * (365.0 * 86_400.0) / self.sim_seconds as f64
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "┌─ RAPS run report ────────────────────────────────")?;
        writeln!(f, "│ simulated span        {:>12.2} h", self.sim_seconds as f64 / 3600.0)?;
        writeln!(f, "│ jobs completed        {:>12}", self.jobs_completed)?;
        writeln!(f, "│ jobs unfinished       {:>12}", self.jobs_unfinished)?;
        writeln!(f, "│ throughput            {:>12.1} jobs/hr", self.throughput_jobs_per_hour)?;
        writeln!(f, "│ avg power             {:>12.2} MW", self.avg_power_mw)?;
        writeln!(f, "│ max power             {:>12.2} MW", self.max_power_mw)?;
        writeln!(f, "│ total energy          {:>12.1} MWh", self.total_energy_mwh)?;
        writeln!(f, "│ conversion loss (avg) {:>12.2} MW ({:.2} %)", self.avg_loss_mw, self.loss_percent)?;
        writeln!(f, "│ conversion loss (max) {:>12.2} MW", self.max_loss_mw)?;
        writeln!(f, "│ efficiency η_system   {:>12.3}", self.efficiency)?;
        writeln!(f, "│ CO₂ emissions         {:>12.1} t", self.co2_tons)?;
        writeln!(f, "│ energy cost           {:>12.0} USD", self.cost_usd)?;
        writeln!(f, "│ avg utilization       {:>12.1} %", 100.0 * self.avg_utilization)?;
        if let Some(pue) = self.avg_pue {
            writeln!(f, "│ avg PUE               {:>12.3}", pue)?;
        }
        writeln!(f, "│ avg queue wait        {:>12.1} s", self.avg_wait_s)?;
        write!(f, "└──────────────────────────────────────────────────")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_factor_matches_eq6() {
        // Paper: EI = 852.3 lbs/MWh; at η = 0.933 the factor is
        // 852.3 / 2204.6 / 0.933 ≈ 0.4144 t/MWh.
        let costs = CostConfig::default();
        let ef = RunReport::emission_factor(&costs, 0.933);
        assert!((ef - 0.4144).abs() < 0.001, "ef={ef}");
    }

    #[test]
    fn table4_co2_consistency() {
        // Table IV: 405 MWh/day average -> ≈168 t CO₂/day.
        let costs = CostConfig::default();
        let co2 = RunReport::co2_for(&costs, 405.0, 0.933);
        assert!((co2 - 168.0).abs() < 2.0, "co2={co2}");
    }

    #[test]
    fn loss_cost_consistency_with_900k_claim() {
        // Finding 9: 1.14 MW average loss ≈ $900k/yr at our tariff.
        let costs = CostConfig::default();
        let yearly_mwh = 1.14 * 8_766.0;
        let cost = RunReport::cost_for(&costs, yearly_mwh);
        assert!((cost - 900_000.0).abs() < 20_000.0, "cost={cost}");
    }

    #[test]
    fn annualize_scales_by_span() {
        let mut r = dummy_report();
        r.sim_seconds = 86_400; // one day
        let yearly = r.annualize(10.0);
        assert!((yearly - 3_650.0).abs() < 1.0);
    }

    #[test]
    fn display_contains_all_seven_statistics() {
        let r = dummy_report();
        let s = format!("{r}");
        for needle in
            ["jobs completed", "throughput", "avg power", "total energy", "loss", "CO₂", "cost"]
        {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    fn dummy_report() -> RunReport {
        RunReport {
            sim_seconds: 86_400,
            jobs_completed: 1_575,
            jobs_unfinished: 12,
            throughput_jobs_per_hour: 65.6,
            avg_power_mw: 16.9,
            max_power_mw: 23.0,
            total_energy_mwh: 405.0,
            avg_loss_mw: 1.14,
            max_loss_mw: 1.84,
            loss_percent: 6.74,
            efficiency: 0.933,
            co2_tons: 168.0,
            cost_usd: 36_450.0,
            avg_utilization: 0.61,
            avg_pue: Some(1.05),
            avg_wait_s: 412.0,
        }
    }
}
