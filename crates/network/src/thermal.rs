//! Thermal stream helpers.
//!
//! Once the hydraulic solve fixes the flow field, temperatures propagate
//! along the flow direction: streams mix at junctions (flow-weighted),
//! pick up heat in loads, and shed it in exchangers/towers. The cooling
//! crate sequences its components explicitly; these helpers keep the
//! junction algebra in one tested place.

use exadigit_thermo::fluid::Fluid;

/// Flow-weighted mixing temperature of several streams `(mdot_kg_s, t_c)`.
/// Streams with non-positive flow are ignored; with no positive flow the
/// result is the plain average of the given temperatures (a harmless
/// convention for a stagnant junction).
pub fn mix_streams(streams: &[(f64, f64)]) -> f64 {
    let mut mdot_sum = 0.0;
    let mut weighted = 0.0;
    for &(mdot, t) in streams {
        if mdot > 0.0 {
            mdot_sum += mdot;
            weighted += mdot * t;
        }
    }
    if mdot_sum > 0.0 {
        weighted / mdot_sum
    } else if streams.is_empty() {
        f64::NAN
    } else {
        streams.iter().map(|&(_, t)| t).sum::<f64>() / streams.len() as f64
    }
}

/// Temperature rise of a stream absorbing `heat_w` at `mdot` kg/s:
/// `ΔT = H / (ṁ·cp)` — the inverse of eq. (7) in the paper.
pub fn temperature_rise(fluid: Fluid, t_in: f64, mdot: f64, heat_w: f64) -> f64 {
    if mdot <= 1e-12 {
        return t_in; // no flow: rise is undefined; hold the inlet
    }
    t_in + heat_w / (mdot * fluid.specific_heat(t_in))
}

/// Convert volumetric flow (m³/s) to mass flow (kg/s) at temperature `t`.
pub fn mass_flow(fluid: Fluid, q_m3s: f64, t: f64) -> f64 {
    q_m3s * fluid.density(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_two_equal_streams_averages() {
        let t = mix_streams(&[(5.0, 20.0), (5.0, 40.0)]);
        assert!((t - 30.0).abs() < 1e-12);
    }

    #[test]
    fn mixing_weighted_by_flow() {
        let t = mix_streams(&[(9.0, 20.0), (1.0, 40.0)]);
        assert!((t - 22.0).abs() < 1e-12);
    }

    #[test]
    fn negative_flows_ignored() {
        let t = mix_streams(&[(5.0, 20.0), (-5.0, 99.0)]);
        assert!((t - 20.0).abs() < 1e-12);
    }

    #[test]
    fn stagnant_junction_plain_average() {
        let t = mix_streams(&[(0.0, 10.0), (0.0, 30.0)]);
        assert!((t - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_nan() {
        assert!(mix_streams(&[]).is_nan());
    }

    #[test]
    fn temperature_rise_matches_eq7_inverse() {
        // 100 kW into 5 kg/s of water: ΔT ≈ 4.78 K.
        let t_out = temperature_rise(Fluid::Water, 25.0, 5.0, 100_000.0);
        let cp = Fluid::Water.specific_heat(25.0);
        assert!((t_out - (25.0 + 100_000.0 / (5.0 * cp))).abs() < 1e-12);
    }

    #[test]
    fn zero_flow_holds_inlet() {
        assert_eq!(temperature_rise(Fluid::Water, 25.0, 0.0, 1e6), 25.0);
    }

    #[test]
    fn mass_flow_uses_density() {
        let m = mass_flow(Fluid::Water, 0.1, 20.0);
        assert!((m - 99.82).abs() < 0.1, "m={m}");
    }
}
