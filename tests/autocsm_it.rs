//! AutoCSM integration (§V): generate cooling models for non-Frontier
//! systems from JSON specifications and run them.

use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_core::{DigitalTwin, TwinConfig};
use exadigit_sim::fmi::{CoSimModel, VarRef};

#[test]
fn plant_generated_from_json_string_runs() {
    // The AutoCSM path: JSON in, runnable model out.
    let json = PlantSpec::setonix_like().to_json();
    let spec = PlantSpec::from_json(&json).unwrap();
    let mut model = CoolingModel::new(spec.clone()).unwrap();
    model.setup(0.0);
    let heat = spec.heat_per_cdu_w() * 0.7;
    for i in 0..spec.num_cdus {
        model.set_real(VarRef(i as u32), heat).unwrap();
    }
    for k in 0..300 {
        model.do_step(k as f64 * 15.0, 15.0).unwrap();
    }
    let pue = model.output_by_name("pue").unwrap();
    assert!((1.0..1.3).contains(&pue), "pue={pue}");
    let t = model.output_by_name("cdu[1].secondary_supply_temp").unwrap();
    assert!((20.0..45.0).contains(&t), "supply temp {t}");
}

#[test]
fn marconi100_like_plant_balances_heat() {
    let spec = PlantSpec::marconi100_like();
    let mut model = CoolingModel::new(spec.clone()).unwrap();
    model.setup(0.0);
    let heat = spec.heat_per_cdu_w() * 0.8;
    for i in 0..spec.num_cdus {
        model.set_real(VarRef(i as u32), heat).unwrap();
    }
    for k in 0..500 {
        model.do_step(k as f64 * 15.0, 15.0).unwrap();
    }
    // Steady: towers reject what racks inject (within 5 %).
    let rejected = model.plant().state.heat_rejected_w;
    let injected = heat * spec.num_cdus as f64;
    assert!(
        (rejected - injected).abs() / injected < 0.05,
        "injected {injected:.3e} rejected {rejected:.3e}"
    );
}

#[test]
fn setonix_like_twin_multi_partition_end_to_end() {
    // The generalised twin: multi-partition scheduling + generated plant.
    let mut twin = DigitalTwin::new(TwinConfig::setonix_like()).unwrap();
    let mut cpu_job = exadigit_raps::job::Job::new(1, "cpu-batch", 256, 900, 1, 0.7, 0.0);
    cpu_job.partition = 0;
    let mut gpu_job = exadigit_raps::job::Job::new(2, "gpu-train", 64, 900, 1, 0.4, 0.9);
    gpu_job.partition = 1;
    twin.submit(vec![cpu_job, gpu_job]);
    twin.run(1200).unwrap();
    let r = twin.report();
    assert_eq!(r.jobs_completed, 2);
    assert!(r.avg_pue.is_some());
}

#[test]
fn invalid_spec_rejected_by_generator() {
    let mut spec = PlantSpec::frontier();
    spec.ehx.effectiveness = 1.8;
    assert!(CoolingModel::new(spec).is_err());
}

#[test]
fn output_registry_scales_with_architecture() {
    // 11 outputs per CDU plus fixed blocks: the registry is generated
    // from the spec, not hard-coded for Frontier.
    let frontier = CoolingModel::frontier();
    let setonix = CoolingModel::new(PlantSpec::setonix_like()).unwrap();
    assert_eq!(frontier.output_count(), 317);
    assert!(setonix.output_count() < frontier.output_count());
    let diff = frontier.output_count() - setonix.output_count();
    // 17 extra CDUs × 11 channels, 12 fewer fans... the exact algebra is
    // checked in the cooling crate; here we only require consistency.
    assert!(diff > 17 * 11 - 20 && diff < 17 * 11 + 20, "diff={diff}");
}
