//! Thermo-fluid component library for ExaDigiT-rs.
//!
//! The paper models Frontier's cooling plant in Modelica using components
//! from the Modelica Standard Library, TRANSFORM and the Modelica Buildings
//! Library (§III-C3): volumes, flow resistances, pumps, heat exchangers,
//! a variable-fan-speed cooling tower, and the plant control system. This
//! crate is the Rust equivalent of that component palette:
//!
//! * [`fluid`] — temperature-dependent water / propylene-glycol properties;
//! * [`psychro`] — the psychrometrics needed by the cooling towers
//!   (wet-bulb temperature is the only weather input of the cooling model);
//! * [`pump`] — quadratic head curves, affinity laws, efficiency and
//!   electrical power for the CTWPs, HTWPs and CDU pumps;
//! * [`hx`] — ε-NTU counterflow heat exchangers (EHX1-5 and the HEX-1600
//!   in each CDU);
//! * [`tower`] — an ε-NTU evaporative cooling-tower cell with fan-speed
//!   scaling (MBL's variable-speed tower, simplified);
//! * [`valve`] — control valves with linear / equal-percentage trim (the
//!   CDU primary-side valve regulating secondary supply temperature);
//! * [`pipe`] — hydraulic resistances, transport delay, and well-mixed
//!   thermal volumes;
//! * [`coldplate`] — cold-plate thermal resistance for blade-level
//!   temperature estimates and thermal-throttle detection (a requirements-
//!   analysis use case in §III-A);
//! * [`pid`] — PID controllers with anti-windup (§III-C5);
//! * [`staging`] — hysteresis staging state machines and the first-order
//!   delay element the paper uses between the primary and tower loops.

#![warn(missing_docs)]

pub mod coldplate;
pub mod fluid;
pub mod hx;
pub mod pid;
pub mod pipe;
pub mod psychro;
pub mod pump;
pub mod staging;
pub mod tower;
pub mod valve;

pub use fluid::Fluid;
pub use hx::HeatExchanger;
pub use pid::Pid;
pub use pipe::{HydraulicResistance, ThermalVolume, TransportDelay};
pub use pump::Pump;
pub use staging::{FirstOrderLag, HysteresisStager};
pub use tower::CoolingTowerCell;
pub use valve::{ControlValve, ValveCharacteristic};
