//! Kill-and-recover: the service-level durability contract.
//!
//! A [`TwinService`] built with a persist directory writes every adopted
//! snapshot to disk and checkpoints its live twin on demand; dropping the
//! service (process death) and calling [`TwinService::recover`] on the
//! same directory must bring back the live twin at its checkpointed
//! second, every snapshot id and label, and answers equivalent to what
//! the pre-crash service would have given — the query cache restarts
//! cold, but a cold cache recomputing the *same* outcome is exactly the
//! soundness bar. Torn snapshot files and corrupt manifest lines degrade
//! to typed per-request errors and warnings; they never panic and are
//! never silently skipped.

use exadigit_core::config::TwinConfig;
use exadigit_service::{
    read_message, write_message, PersistError, Request, Response, TelemetryFeed, TwinService,
    WhatIfSpec,
};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("exadigit-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_service(dir: &PathBuf) -> TwinService {
    TwinService::new(TwinConfig::frontier_power_only(), TelemetryFeed::synthetic(11, 1), 11)
        .unwrap()
        .with_threads(2)
        .with_persist_dir(dir)
        .unwrap()
}

#[test]
fn checkpoint_kill_recover_restores_snapshots_and_answers() {
    let dir = scratch_dir("lifecycle");
    let spec = WhatIfSpec { horizon_s: 900, ..WhatIfSpec::default() };
    let (morning_answer, noon_answer, ingested) = {
        let svc = durable_service(&dir);
        svc.handle(&Request::Advance { seconds: 21_600 });
        let Response::SnapshotTaken(morning) =
            svc.handle(&Request::Snapshot { label: "morning".into() })
        else {
            panic!()
        };
        svc.handle(&Request::Advance { seconds: 21_600 });
        let Response::SnapshotTaken(noon) =
            svc.handle(&Request::Snapshot { label: "noon".into() })
        else {
            panic!()
        };
        let Response::Answer { outcome: morning_answer, .. } =
            svc.handle(&Request::Query { snapshot_id: morning.id, spec: spec.clone() })
        else {
            panic!()
        };
        let Response::Answer { outcome: noon_answer, .. } =
            svc.handle(&Request::Query { snapshot_id: noon.id, spec: spec.clone() })
        else {
            panic!()
        };
        // Checkpoint mid-day, then "crash" (drop without shutdown).
        let Response::Checkpointed { now_s, bytes } = svc.handle(&Request::Checkpoint) else {
            panic!("checkpoint must succeed with a persist dir")
        };
        assert_eq!(now_s, 43_200);
        assert!(bytes > 0);
        let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
        (morning_answer, noon_answer, s.jobs_ingested)
    };

    let svc = TwinService::recover(&dir).unwrap().with_threads(2);
    assert!(svc.recovery_warnings().is_empty());

    // The live twin resumes at the checkpointed second with its ingest
    // counter intact.
    let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
    assert_eq!(s.now_s, 43_200);
    assert_eq!(s.jobs_ingested, ingested);

    // Snapshot ids and labels survive.
    let Response::Snapshots(list) = svc.handle(&Request::ListSnapshots) else { panic!() };
    assert_eq!(
        list.iter().map(|i| (i.id, i.label.as_str())).collect::<Vec<_>>(),
        vec![(1, "morning"), (2, "noon")]
    );

    // Cached-equivalent answers: the recomputed outcomes equal the
    // pre-crash ones exactly (first ask is a cold-cache compute, second
    // is a hit on the same bits).
    for (id, expected) in [(1, &morning_answer), (2, &noon_answer)] {
        let q = Request::Query { snapshot_id: id, spec: spec.clone() };
        let Response::Answer { cached: false, outcome } = svc.handle(&q) else {
            panic!("recovered cache must start cold")
        };
        assert_eq!(&outcome, expected, "snapshot {id} answered differently after recovery");
        let Response::Answer { cached: true, outcome } = svc.handle(&q) else { panic!() };
        assert_eq!(&outcome, expected);
    }

    // The recovered service keeps serving: ingest continues and new
    // snapshot ids never reuse pre-crash ones.
    assert!(matches!(
        svc.handle(&Request::Advance { seconds: 600 }),
        Response::Advanced { now_s: 43_800, .. }
    ));
    let Response::SnapshotTaken(info) =
        svc.handle(&Request::Snapshot { label: "post-crash".into() })
    else {
        panic!()
    };
    assert_eq!(info.id, 3, "next_id survives the restart");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_without_a_checkpoint_is_a_typed_error() {
    let dir = scratch_dir("no-checkpoint");
    {
        let svc = durable_service(&dir);
        svc.handle(&Request::Advance { seconds: 600 });
        svc.handle(&Request::Snapshot { label: "only".into() });
        // No Checkpoint request before the "crash".
    }
    let err = TwinService::recover(&dir).err().expect("recover must fail without live.json");
    assert!(err.contains("live.json"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_snapshot_file_degrades_to_a_per_request_error() {
    let dir = scratch_dir("torn-snap");
    {
        let svc = durable_service(&dir);
        svc.handle(&Request::Advance { seconds: 1_800 });
        svc.handle(&Request::Snapshot { label: "a".into() });
        svc.handle(&Request::Snapshot { label: "b".into() });
        svc.handle(&Request::Checkpoint);
    }
    // Tear snapshot 1's file mid-payload.
    let snap_path = dir.join("snap-1.json");
    let bytes = std::fs::read(&snap_path).unwrap();
    std::fs::write(&snap_path, &bytes[..bytes.len() / 3]).unwrap();

    let svc = TwinService::recover(&dir).unwrap();
    // The torn snapshot errors (typed, mentioning the tear), siblings
    // and the live twin are untouched.
    let spec = WhatIfSpec { horizon_s: 300, ..WhatIfSpec::default() };
    let Response::Error { message } =
        svc.handle(&Request::Query { snapshot_id: 1, spec: spec.clone() })
    else {
        panic!("a torn snapshot must answer an error, not a panic")
    };
    assert!(message.contains("truncated"), "{message}");
    assert!(matches!(
        svc.handle(&Request::Query { snapshot_id: 2, spec }),
        Response::Answer { .. }
    ));
    // Persist can heal the torn file from nothing only if the snapshot
    // is resident; here it is spilled and unreadable, so it errors too.
    assert!(matches!(
        svc.handle(&Request::Persist { snapshot_id: 1 }),
        Response::Error { .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_line_is_reported_not_skipped() {
    let dir = scratch_dir("bad-manifest");
    {
        let svc = durable_service(&dir);
        svc.handle(&Request::Advance { seconds: 1_200 });
        svc.handle(&Request::Snapshot { label: "a".into() });
        svc.handle(&Request::Snapshot { label: "b".into() });
        svc.handle(&Request::Checkpoint);
    }
    // Corrupt the first entry line in place, keeping the length prefix
    // truthful (a damaged line, not a torn file).
    let manifest = dir.join("manifest.json");
    let bytes = std::fs::read(&manifest).unwrap();
    let text = String::from_utf8(bytes[8..].to_vec()).unwrap();
    let mangled: Vec<String> = text
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 1 { "{broken".to_string() } else { l.to_string() })
        .collect();
    let payload = mangled.join("\n") + "\n";
    let mut rewritten = (payload.len() as u64).to_le_bytes().to_vec();
    rewritten.extend_from_slice(payload.as_bytes());
    std::fs::write(&manifest, rewritten).unwrap();

    let svc = TwinService::recover(&dir).unwrap();
    let warnings = svc.recovery_warnings();
    assert_eq!(warnings.len(), 1, "the damaged line is reported");
    assert!(warnings[0].contains("line 2"), "{}", warnings[0]);
    // The intact snapshot still serves; the damaged id is unknown (its
    // manifest entry is gone), which is an error, not a silent blank.
    let Response::Snapshots(list) = svc.handle(&Request::ListSnapshots) else { panic!() };
    assert_eq!(list.iter().map(|i| i.id).collect::<Vec<_>>(), vec![2]);
    assert!(matches!(
        svc.handle(&Request::Query { snapshot_id: 1, spec: WhatIfSpec::default() }),
        Response::Error { .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_warnings_travel_the_wire() {
    let dir = scratch_dir("warn-wire");
    {
        let svc = durable_service(&dir);
        svc.handle(&Request::Advance { seconds: 1_200 });
        svc.handle(&Request::Snapshot { label: "a".into() });
        svc.handle(&Request::Snapshot { label: "b".into() });
        svc.handle(&Request::Checkpoint);
    }
    // Same in-place damage as above: a mangled entry line with a
    // truthful length prefix.
    let manifest = dir.join("manifest.json");
    let bytes = std::fs::read(&manifest).unwrap();
    let text = String::from_utf8(bytes[8..].to_vec()).unwrap();
    let mangled: Vec<String> = text
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 1 { "{broken".to_string() } else { l.to_string() })
        .collect();
    let payload = mangled.join("\n") + "\n";
    let mut rewritten = (payload.len() as u64).to_le_bytes().to_vec();
    rewritten.extend_from_slice(payload.as_bytes());
    std::fs::write(&manifest, rewritten).unwrap();

    // A remote operator never calls `recovery_warnings()` directly; the
    // Metrics verb must carry the same report over a real socket.
    let svc = TwinService::recover(&dir).unwrap();
    let handle =
        exadigit_service::TwinServer::bind(svc, "127.0.0.1:0").expect("bind loopback").spawn();
    let mut client =
        exadigit_service::ServiceClient::connect(handle.addr()).expect("connect loopback");
    let Response::Metrics(report) = client.request(&Request::Metrics).unwrap() else {
        panic!("Metrics request must answer with a metrics report");
    };
    assert_eq!(report.recovery_warnings.len(), 1, "the damaged line travels the wire");
    assert!(report.recovery_warnings[0].contains("line 2"), "{}", report.recovery_warnings[0]);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_header_fails_recovery_with_a_typed_error() {
    let dir = scratch_dir("bad-header");
    {
        let svc = durable_service(&dir);
        svc.handle(&Request::Snapshot { label: "a".into() });
        svc.handle(&Request::Checkpoint);
    }
    let manifest = dir.join("manifest.json");
    let payload = b"not a header\n".to_vec();
    let mut rewritten = (payload.len() as u64).to_le_bytes().to_vec();
    rewritten.extend_from_slice(&payload);
    std::fs::write(&manifest, rewritten).unwrap();
    let err = TwinService::recover(&dir).err().expect("a headerless manifest cannot recover");
    assert!(err.contains("header"), "{err}");

    // The same failure is typed at the store layer.
    match exadigit_service::SnapshotStore::recover(&dir) {
        Err(PersistError::Corrupt { detail, .. }) => {
            assert!(detail.contains("header"), "{detail}")
        }
        Err(e) => panic!("expected Corrupt, got {e}"),
        Ok(_) => panic!("recovery must fail"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_snapshot_stays_dropped_across_recovery_and_cache_stays_clean() {
    // The satellite cache fix: invalidation applies to spilled snapshots
    // too, and because `next_id` is persisted, a recovered service can
    // never mint an id that stale cache entries were keyed under.
    let dir = scratch_dir("drop-across");
    {
        let svc = durable_service(&dir);
        svc.handle(&Request::Advance { seconds: 900 });
        svc.handle(&Request::Snapshot { label: "doomed".into() });
        let q = Request::Query {
            snapshot_id: 1,
            spec: WhatIfSpec { horizon_s: 300, ..WhatIfSpec::default() },
        };
        svc.handle(&q);
        let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
        assert_eq!(s.cache_entries, 1);
        // Dropping invalidates the cache even though the snapshot also
        // lives on disk.
        svc.handle(&Request::DropSnapshot { snapshot_id: 1 });
        let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
        assert_eq!(s.cache_entries, 0, "spilled snapshot's cache entries are invalidated");
        assert!(matches!(svc.handle(&q), Response::Error { .. }));
        svc.handle(&Request::Checkpoint);
    }
    let svc = TwinService::recover(&dir).unwrap();
    let Response::Snapshots(list) = svc.handle(&Request::ListSnapshots) else { panic!() };
    assert!(list.is_empty(), "the drop survived the restart");
    let Response::SnapshotTaken(info) =
        svc.handle(&Request::Snapshot { label: "fresh".into() })
    else {
        panic!()
    };
    assert_eq!(info.id, 2, "the dropped id is never reused");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_and_persist_travel_the_wire_format() {
    // The new protocol verbs round-trip like every other message.
    let mut wire = Vec::new();
    write_message(&mut wire, &Request::Checkpoint).unwrap();
    write_message(&mut wire, &Request::Persist { snapshot_id: 9 }).unwrap();
    write_message(&mut wire, &Response::Checkpointed { now_s: 120, bytes: 4_096 }).unwrap();
    write_message(&mut wire, &Response::Persisted { snapshot_id: 9, bytes: 512 }).unwrap();
    let mut reader = std::io::BufReader::new(wire.as_slice());
    let a: Request = read_message(&mut reader).unwrap().unwrap().unwrap();
    let b: Request = read_message(&mut reader).unwrap().unwrap().unwrap();
    let c: Response = read_message(&mut reader).unwrap().unwrap().unwrap();
    let d: Response = read_message(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(a, Request::Checkpoint);
    assert_eq!(b, Request::Persist { snapshot_id: 9 });
    assert_eq!(c, Response::Checkpointed { now_s: 120, bytes: 4_096 });
    assert_eq!(d, Response::Persisted { snapshot_id: 9, bytes: 512 });
}

#[test]
fn auto_checkpoint_requires_a_persist_dir_and_positive_cadence() {
    let svc =
        TwinService::new(TwinConfig::frontier_power_only(), TelemetryFeed::synthetic(3, 1), 3)
            .unwrap();
    // No durable tier: the cadence has nowhere to write.
    assert!(svc.with_auto_checkpoint_every(4).is_err());
    let dir = scratch_dir("auto-zero");
    let svc = durable_service(&dir);
    assert!(svc.with_auto_checkpoint_every(0).is_err(), "zero cadence is a config mistake");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_checkpoint_bounds_crash_loss_to_the_cadence() {
    let dir = scratch_dir("auto-cadence");
    {
        // Checkpoint automatically after every 2 ingest batches; the
        // client never sends an explicit Checkpoint.
        let svc = durable_service(&dir).with_auto_checkpoint_every(2).unwrap();
        svc.handle(&Request::Advance { seconds: 600 });
        // One batch since the last durable write: recovery still finds
        // nothing (explicit-only semantics are preserved between ticks).
        assert!(TwinService::recover(&dir).is_err(), "no checkpoint after 1 of 2 batches");
        svc.handle(&Request::Advance { seconds: 600 });
        // Second batch crossed the cadence: live.json exists now.
        let recovered = TwinService::recover(&dir).unwrap();
        let Response::Status(s) = recovered.handle(&Request::Status) else { panic!() };
        assert_eq!(s.now_s, 1_200, "auto-checkpoint captured the second advance");
        // A third advance leaves the twin past the checkpoint; crash-loss
        // is bounded by the cadence, so recovery lands on t = 1200 s.
        svc.handle(&Request::Advance { seconds: 600 });
        let recovered = TwinService::recover(&dir).unwrap();
        let Response::Status(s) = recovered.handle(&Request::Status) else { panic!() };
        assert_eq!(s.now_s, 1_200, "the un-checkpointed batch is the only loss");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manual_checkpoint_restarts_the_auto_cadence() {
    let dir = scratch_dir("auto-manual");
    {
        let svc = durable_service(&dir).with_auto_checkpoint_every(2).unwrap();
        svc.handle(&Request::Advance { seconds: 300 });
        // Manual checkpoint at t = 300 resets the batch counter...
        let Response::Checkpointed { now_s, .. } = svc.handle(&Request::Checkpoint) else {
            panic!()
        };
        assert_eq!(now_s, 300);
        // ...so the next advance is 1 of 2 again and does not re-write.
        svc.handle(&Request::Advance { seconds: 300 });
        let recovered = TwinService::recover(&dir).unwrap();
        let Response::Status(s) = recovered.handle(&Request::Status) else { panic!() };
        assert_eq!(s.now_s, 300, "cadence counts from the manual checkpoint");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
