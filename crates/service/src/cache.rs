//! Response cache keyed by `(snapshot id, scenario fingerprint)`.
//!
//! Cache coherence rests on two determinism guarantees: a snapshot is
//! immutable, and [`crate::run_whatif`] is a pure function of
//! `(snapshot, spec)` — bit-identical at any pool width (per-draw RNG
//! streams are index-keyed and reductions fold in index order). The
//! same question asked of the same frozen state therefore always has
//! the same answer, and memoising it is sound.
//!
//! The **scenario fingerprint** is FNV-1a 64 over the spec's canonical
//! JSON (field order is fixed by declaration order, so equal specs
//! serialise identically). Two specs differing in any field — label
//! included — fingerprint differently; the label is deliberately part
//! of the key so that a re-labelled scenario reads as a new question
//! rather than silently aliasing an old answer.
//!
//! Eviction is **LRU with a byte budget**: a hit promotes its entry to
//! most-recently-used, and inserting evicts least-recently-used entries
//! until both the entry cap and the byte budget ([`outcome_bytes`] per
//! entry) hold. Under a hot working set this keeps the scenarios
//! clients actually re-ask, where the old FIFO evicted them on a clock.

use crate::query::{WhatIfOutcome, WhatIfSpec};
use exadigit_obs::{Counter, Gauge};
use std::collections::{BTreeMap, HashMap};

/// The cache's registry handles: lifetime hit/miss/eviction counters
/// plus occupancy gauges. Defaults to detached (unregistered)
/// instruments so a standalone [`QueryCache`] still counts; the service
/// swaps in registry-backed handles via [`QueryCache::set_metrics`] so
/// the same totals surface in `Status`, the `Metrics` verb, and the
/// Prometheus scrape.
#[derive(Clone, Default)]
pub(crate) struct CacheMetrics {
    /// Lookups answered from memory.
    pub hits: Counter,
    /// Lookups that fell through to a fresh ensemble run.
    pub misses: Counter,
    /// Entries evicted by the LRU cap or byte budget (not invalidation).
    pub evictions: Counter,
    /// Outcomes currently memoised.
    pub entries: Gauge,
    /// Resident bytes across memoised outcomes.
    pub bytes: Gauge,
}

/// FNV-1a 64-bit over a byte string.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The scenario half of the cache key: FNV-1a 64 over the spec's
/// canonical JSON.
pub fn scenario_fingerprint(spec: &WhatIfSpec) -> u64 {
    let json = serde_json::to_string(spec).expect("specs serialise");
    fnv1a64(json.as_bytes())
}

/// Approximate resident size of one memoised outcome, the unit the
/// byte budget meters: the struct itself plus its heap bytes — the
/// label *and* the per-draw UQ payload vectors, which dominate for
/// large ensembles (a 4096-draw outcome carries ~64 KiB of draws next
/// to a ~200 B summary).
pub fn outcome_bytes(outcome: &WhatIfOutcome) -> usize {
    std::mem::size_of::<WhatIfOutcome>()
        + outcome.label.len()
        + (outcome.draw_avg_power_mw.capacity() + outcome.draw_energy_mwh.capacity())
            * std::mem::size_of::<f64>()
}

/// Default byte budget: generous next to the default 1024-entry cap
/// (outcomes are ~150 B), so entry count governs unless labels balloon.
const DEFAULT_BYTE_BUDGET: usize = 16 * 1024 * 1024;

struct CacheEntry {
    outcome: WhatIfOutcome,
    bytes: usize,
    /// Recency stamp; also the entry's key in the LRU index.
    tick: u64,
}

/// A bounded LRU memo of query outcomes (promote-on-hit, byte-budgeted
/// eviction).
pub struct QueryCache {
    map: HashMap<(u64, u64), CacheEntry>,
    /// Recency index: ascending tick = least- to most-recently used.
    lru: BTreeMap<u64, (u64, u64)>,
    tick: u64,
    capacity: usize,
    byte_budget: usize,
    total_bytes: usize,
    metrics: CacheMetrics,
}

impl QueryCache {
    /// Cache holding at most `capacity` outcomes (least-recently-used
    /// evicted first) under the default byte budget.
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            byte_budget: DEFAULT_BYTE_BUDGET,
            total_bytes: 0,
            metrics: CacheMetrics::default(),
        }
    }

    /// Attach registry-backed instruments (replacing the detached
    /// defaults) and publish current occupancy to the gauges.
    pub(crate) fn set_metrics(&mut self, metrics: CacheMetrics) {
        self.metrics = metrics;
        self.sync_gauges();
    }

    /// Publish occupancy to the entry/byte gauges after any mutation.
    fn sync_gauges(&self) {
        self.metrics.entries.set(self.map.len() as f64);
        self.metrics.bytes.set(self.total_bytes as f64);
    }

    /// Cap resident outcome bytes (builder style). An outcome larger
    /// than the whole budget is never cached.
    pub fn with_byte_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = bytes.max(1);
        self.evict_to_fit(0);
        self.sync_gauges();
        self
    }

    /// Look up a memoised outcome, counting the hit or miss. A hit
    /// promotes the entry to most-recently-used.
    pub fn get(&mut self, snapshot_id: u64, fingerprint: u64) -> Option<WhatIfOutcome> {
        match self.map.get_mut(&(snapshot_id, fingerprint)) {
            Some(entry) => {
                self.metrics.hits.inc();
                self.lru.remove(&entry.tick);
                self.tick += 1;
                entry.tick = self.tick;
                self.lru.insert(self.tick, (snapshot_id, fingerprint));
                Some(entry.outcome.clone())
            }
            None => {
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Memoise an outcome, evicting least-recently-used entries until
    /// the entry cap and the byte budget both hold.
    pub fn insert(&mut self, snapshot_id: u64, fingerprint: u64, outcome: WhatIfOutcome) {
        let key = (snapshot_id, fingerprint);
        let bytes = outcome_bytes(&outcome);
        if bytes > self.byte_budget {
            // Caching it would evict everything else and still overflow.
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.tick);
            self.total_bytes -= old.bytes;
        }
        self.evict_to_fit(bytes);
        self.tick += 1;
        self.lru.insert(self.tick, key);
        self.total_bytes += bytes;
        self.map.insert(key, CacheEntry { outcome, bytes, tick: self.tick });
        self.sync_gauges();
    }

    /// Evict LRU-first until an `incoming`-byte entry fits both bounds.
    fn evict_to_fit(&mut self, incoming: usize) {
        let target_len = if incoming > 0 { self.capacity - 1 } else { self.capacity };
        while self.map.len() > target_len || self.total_bytes + incoming > self.byte_budget {
            let Some((&tick, &key)) = self.lru.iter().next() else { break };
            self.lru.remove(&tick);
            if let Some(entry) = self.map.remove(&key) {
                self.total_bytes -= entry.bytes;
                self.metrics.evictions.inc();
            }
        }
    }

    /// Drop every entry answered from `snapshot_id` (called when the
    /// snapshot is dropped — its id will never be asked again, and ids
    /// are not reused, but the memory is reclaimed eagerly).
    pub fn invalidate_snapshot(&mut self, snapshot_id: u64) {
        let dead: Vec<((u64, u64), u64, usize)> = self
            .map
            .iter()
            .filter(|(&(sid, _), _)| sid == snapshot_id)
            .map(|(&key, entry)| (key, entry.tick, entry.bytes))
            .collect();
        for (key, tick, bytes) in dead {
            self.map.remove(&key);
            self.lru.remove(&tick);
            self.total_bytes -= bytes;
        }
        self.sync_gauges();
    }

    /// Number of memoised outcomes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of memoised outcomes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The byte budget eviction enforces.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Resident bytes across memoised outcomes ([`outcome_bytes`] each).
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Lifetime (hits, misses). Reads the same counters the metrics
    /// registry exposes, so `Status` and a Prometheus scrape can never
    /// disagree.
    pub fn stats(&self) -> (u64, u64) {
        (self.metrics.hits.get(), self.metrics.misses.get())
    }

    /// Lifetime LRU/byte-budget evictions.
    pub fn evictions(&self) -> u64 {
        self.metrics.evictions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str) -> WhatIfOutcome {
        WhatIfOutcome {
            label: label.into(),
            from_s: 0,
            to_s: 1,
            jobs_completed: 0,
            avg_power_mw: 1.0,
            power_std_mw: 0.0,
            energy_mwh: 1.0,
            energy_std_mwh: 0.0,
            final_pue: None,
            final_utilization: 0.0,
            draw_avg_power_mw: Vec::new(),
            draw_energy_mwh: Vec::new(),
            draws: 1,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = WhatIfSpec::default();
        assert_eq!(scenario_fingerprint(&a), scenario_fingerprint(&a.clone()));
        let b = WhatIfSpec { horizon_s: 7_200, ..WhatIfSpec::default() };
        assert_ne!(scenario_fingerprint(&a), scenario_fingerprint(&b));
        let c = WhatIfSpec { label: "named".into(), ..WhatIfSpec::default() };
        assert_ne!(scenario_fingerprint(&a), scenario_fingerprint(&c), "label is part of the key");
    }

    #[test]
    fn hit_miss_accounting_and_lru_eviction() {
        let mut cache = QueryCache::new(2);
        assert!(cache.get(1, 10).is_none());
        cache.insert(1, 10, outcome("a"));
        cache.insert(1, 20, outcome("b"));
        assert_eq!(cache.get(1, 10).unwrap().label, "a");
        // (1,10) was just used, so inserting a third evicts (1,20).
        cache.insert(1, 30, outcome("c"));
        assert!(cache.get(1, 20).is_none(), "LRU eviction drops the stalest");
        assert_eq!(cache.get(1, 10).unwrap().label, "a", "the promoted entry survives");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (2, 2));
    }

    #[test]
    fn promote_on_hit_reorders_eviction() {
        let mut cache = QueryCache::new(3);
        cache.insert(1, 10, outcome("a"));
        cache.insert(1, 20, outcome("b"));
        cache.insert(1, 30, outcome("c"));
        // Touch the oldest; the middle one becomes the eviction victim.
        assert!(cache.get(1, 10).is_some());
        cache.insert(1, 40, outcome("d"));
        assert!(cache.get(1, 20).is_none(), "unpromoted middle entry evicted");
        assert!(cache.get(1, 10).is_some());
        assert!(cache.get(1, 30).is_some());
        assert!(cache.get(1, 40).is_some());
    }

    #[test]
    fn byte_budget_evicts_by_size_not_count() {
        let unit = outcome_bytes(&outcome(""));
        // Room for two label-less outcomes plus a little slack, far
        // under the 8-entry cap.
        let mut cache = QueryCache::new(8).with_byte_budget(2 * unit + unit / 2);
        cache.insert(1, 10, outcome(""));
        cache.insert(1, 20, outcome(""));
        assert_eq!(cache.len(), 2);
        cache.insert(1, 30, outcome(""));
        assert_eq!(cache.len(), 2, "third entry evicts by bytes");
        assert!(cache.get(1, 10).is_none(), "LRU victim");
        assert!(cache.total_bytes() <= cache.byte_budget());
        // A big-label outcome worth two slots evicts two entries.
        let big_label = "x".repeat(unit);
        cache.insert(1, 40, outcome(&big_label));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1, 40).unwrap().label.len(), unit);
    }

    #[test]
    fn oversized_outcome_is_never_cached() {
        let unit = outcome_bytes(&outcome(""));
        let mut cache = QueryCache::new(8).with_byte_budget(2 * unit);
        cache.insert(1, 10, outcome(""));
        cache.insert(1, 20, outcome(&"y".repeat(4 * unit)));
        assert!(cache.get(1, 20).is_none(), "over-budget outcome skipped");
        assert!(cache.get(1, 10).is_some(), "and nothing was evicted for it");
    }

    #[test]
    fn reinserting_a_key_updates_bytes_in_place() {
        let mut cache = QueryCache::new(4);
        cache.insert(1, 10, outcome("short"));
        let before = cache.total_bytes();
        cache.insert(1, 10, outcome("a much longer label than before"));
        assert_eq!(cache.len(), 1);
        assert!(cache.total_bytes() > before);
        assert_eq!(cache.get(1, 10).unwrap().label, "a much longer label than before");
    }

    #[test]
    fn draw_vectors_are_metered_not_just_the_summary() {
        let lean = outcome("uq");
        let mut fat = outcome("uq");
        fat.draw_avg_power_mw = vec![8.0; 1_024];
        fat.draw_energy_mwh = vec![0.13; 1_024];
        fat.draws = 1_024;
        let overhead = outcome_bytes(&fat) - outcome_bytes(&lean);
        assert!(
            overhead >= 2 * 1_024 * std::mem::size_of::<f64>(),
            "per-draw payloads must count toward the byte budget ({overhead} B)"
        );
        // And the budget actually refuses an over-sized UQ outcome.
        let mut cache = QueryCache::new(8).with_byte_budget(outcome_bytes(&lean) * 2);
        cache.insert(1, 10, fat);
        assert!(cache.get(1, 10).is_none(), "outcome larger than the budget is not cached");
    }

    #[test]
    fn eviction_counter_and_occupancy_gauges_track_mutations() {
        let mut cache = QueryCache::new(2);
        let metrics = CacheMetrics::default();
        cache.set_metrics(metrics.clone());
        cache.insert(1, 10, outcome("a"));
        cache.insert(1, 20, outcome("b"));
        cache.insert(1, 30, outcome("c"));
        assert_eq!(metrics.evictions.get(), 1, "third insert evicts the LRU entry");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(metrics.entries.get(), 2.0);
        assert_eq!(metrics.bytes.get(), cache.total_bytes() as f64);
        cache.invalidate_snapshot(1);
        assert_eq!(metrics.entries.get(), 0.0);
        assert_eq!(metrics.bytes.get(), 0.0);
        assert_eq!(metrics.evictions.get(), 1, "invalidation is not an eviction");
    }

    #[test]
    fn snapshot_invalidation_is_per_snapshot() {
        let mut cache = QueryCache::new(8);
        cache.insert(1, 10, outcome("a"));
        cache.insert(2, 10, outcome("b"));
        cache.invalidate_snapshot(1);
        assert!(cache.get(1, 10).is_none());
        assert_eq!(cache.get(2, 10).unwrap().label, "b");
        // Accounting survives invalidation: bytes match the survivor.
        assert_eq!(cache.total_bytes(), outcome_bytes(&outcome("b")));
    }
}
