//! Restart-recovery smoke: boot a durable scenario server, ingest half a
//! telemetry day, snapshot, answer a what-if, checkpoint — then kill the
//! server, recover a new one from the persist directory, and verify the
//! live twin, the snapshot catalogue, and the query answers all survived
//! the "crash" bit-for-bit.
//!
//! ```sh
//! cargo run --release --example service_recovery
//! ```
//!
//! Runs in CI as the durability smoke test (exit code 1 on any violated
//! assertion).

use exadigit_core::TwinConfig;
use exadigit_service::{
    Request, Response, ServiceClient, TelemetryFeed, TwinServer, TwinService, WhatIfSpec,
};

fn main() {
    println!("ExaDigiT-rs twin-as-a-service — restart recovery demo\n");
    let dir = std::env::temp_dir()
        .join(format!("exadigit-recovery-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Boot a durable service: every snapshot is written under `dir`
    //    (length-prefixed JSON, atomic tmp + rename) as it is taken.
    let service = TwinService::new(
        TwinConfig::frontier_power_only(),
        TelemetryFeed::synthetic(42, 1),
        42,
    )
    .expect("frontier config is valid")
    .with_persist_dir(&dir)
    .expect("fresh persist dir");
    let handle = TwinServer::bind(service, "127.0.0.1:0").expect("bind loopback").spawn();
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    println!("durable server on {} persisting to {}", handle.addr(), dir.display());

    // 2. Ingest half a day, freeze "noon", answer a what-if.
    let Response::Advanced { now_s, jobs_ingested } =
        client.expect(&Request::Advance { seconds: 43_200 }).expect("advance")
    else {
        panic!("unexpected response to Advance")
    };
    println!("ingested half a day: t = {now_s} s, {jobs_ingested} jobs");
    let Response::SnapshotTaken(info) =
        client.expect(&Request::Snapshot { label: "noon".into() }).expect("snapshot")
    else {
        panic!("unexpected response to Snapshot")
    };
    let spec = WhatIfSpec { label: "next hour".into(), horizon_s: 3_600, ..WhatIfSpec::default() };
    let Response::Answer { outcome: before, .. } = client
        .expect(&Request::Query { snapshot_id: info.id, spec: spec.clone() })
        .expect("query")
    else {
        panic!("unexpected response to Query")
    };
    println!(
        "snapshot {} ('{}'): next hour averages {:.2} MW, {} jobs complete",
        info.id, info.label, before.avg_power_mw, before.jobs_completed
    );

    // 3. Checkpoint the live twin, then kill the server — no graceful
    //    state handoff, only what the disk already holds.
    let Response::Checkpointed { now_s, bytes } =
        client.expect(&Request::Checkpoint).expect("checkpoint")
    else {
        panic!("unexpected response to Checkpoint")
    };
    println!("checkpointed live twin at t = {now_s} s ({bytes} bytes)");
    drop(client);
    handle.shutdown();
    println!("server killed ✗\n");

    // 4. Recover a brand-new service from the directory alone.
    let recovered = TwinService::recover(&dir).expect("recover from persist dir");
    assert!(recovered.recovery_warnings().is_empty(), "clean recovery");
    let handle = TwinServer::bind(recovered, "127.0.0.1:0").expect("rebind").spawn();
    let mut client = ServiceClient::connect(handle.addr()).expect("reconnect");
    println!("recovered server on {}", handle.addr());

    // 5. The live twin resumes at the checkpointed second; the snapshot
    //    catalogue survived with its ids and labels.
    let Response::Status(status) = client.expect(&Request::Status).expect("status") else {
        panic!("unexpected response to Status")
    };
    assert_eq!(status.now_s, 43_200, "live twin resumes at the checkpoint");
    let Response::Snapshots(list) = client.expect(&Request::ListSnapshots).expect("list")
    else {
        panic!("unexpected response to ListSnapshots")
    };
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].id, info.id);
    assert_eq!(list[0].label, "noon");
    println!("live twin back at t = {} s; snapshot '{}' (id {}) survived", status.now_s,
        list[0].label, list[0].id);

    // 6. The same question gets the same answer: the cache restarts cold
    //    (first ask recomputes from the rehydrated snapshot), and the
    //    recomputed outcome equals the pre-crash one exactly.
    let Response::Answer { cached, outcome: after } = client
        .expect(&Request::Query { snapshot_id: info.id, spec: spec.clone() })
        .expect("post-recovery query")
    else {
        panic!("unexpected response to Query")
    };
    assert!(!cached, "recovered cache starts cold");
    assert_eq!(after, before, "the recovered snapshot answers bit-identically");
    let Response::Answer { cached, .. } = client
        .expect(&Request::Query { snapshot_id: info.id, spec })
        .expect("cached re-ask")
    else {
        panic!("unexpected response to Query")
    };
    assert!(cached, "second ask hits the rebuilt cache");
    println!("what-if re-answered after recovery: bit-identical, cache warm again ✓");

    // 7. The recovered service keeps serving without id reuse.
    let Response::Advanced { now_s, .. } =
        client.expect(&Request::Advance { seconds: 3_600 }).expect("post-recovery advance")
    else {
        panic!("unexpected response to Advance")
    };
    assert_eq!(now_s, 46_800);
    let Response::SnapshotTaken(fresh) =
        client.expect(&Request::Snapshot { label: "afternoon".into() }).expect("snapshot")
    else {
        panic!("unexpected response to Snapshot")
    };
    assert_eq!(fresh.id, info.id + 1, "snapshot ids never restart from 1");
    println!("ingest resumed to t = {now_s} s; new snapshot took id {} ✓", fresh.id);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nrecovered server shut down cleanly ✓");
}
