//! Thermo-fluid network solver for ExaDigiT-rs.
//!
//! This crate is the numerical heart of the Modelica substitution described
//! in DESIGN.md. The paper's cooling model is a Modelica system of
//! differential-algebraic equations solved by Dymola; the equivalent split
//! here is:
//!
//! * the **algebraic part** — steady hydraulic balance of each pumped loop
//!   per time step — is solved by [`hydraulic`], a damped Newton–Raphson
//!   method over branch flows and junction pressures (plant hydraulics
//!   settle in seconds, far below the 15 s cooling step, so a per-step
//!   steady solve is the right idealisation, and matches how the paper's
//!   model treats pressure states);
//! * the **differential part** — thermal storage in volumes and transport
//!   delays — is integrated by the components themselves (exact exponential
//!   updates) or by the general-purpose integrators in [`ode`];
//! * [`linalg`] provides the small dense LU factorisation used by the
//!   Newton steps;
//! * [`thermal`] provides stream-mixing helpers for junction temperatures.

#![warn(missing_docs)]

pub mod hydraulic;
pub mod linalg;
pub mod ode;
pub mod thermal;

pub use hydraulic::{Branch, BranchElement, BranchId, HydraulicNetwork, NodeId, Solution, SolverError};
pub use linalg::Matrix;
