//! A 64-draw Monte-Carlo UQ sweep with confidence bands — the paper's §IV
//! uncertainty quantification, batched across the thread-pool executor.
//!
//! ```sh
//! cargo run --release --example ensemble_sweep
//! EXADIGIT_THREADS=4 cargo run --release --example ensemble_sweep
//! cargo run --release --example ensemble_sweep -- --threads 8
//! ```
//!
//! Whatever the pool width, the numbers printed are bit-identical — the
//! engine's determinism contract (see docs/ENSEMBLES.md).

use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::uq::{run_ensemble_on, UqPerturbations};
use exadigit_sim::EnsembleRunner;
use std::time::Instant;

fn main() {
    // Pool width: --threads N beats EXADIGIT_THREADS beats the core count.
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());

    // A Frontier slice small enough to sweep quickly.
    let mut cfg = SystemConfig::frontier();
    cfg.partitions[0].nodes = 512;
    cfg.cooling.num_cdus = 2;
    cfg.cooling.racks_per_cdu = 2;

    // One steady 80 %-utilization job pinned to half the machine.
    let jobs = vec![Job::new(1, "hpl-like", 256, 3_600, 1, 0.8, 0.8)];

    let mut runner = EnsembleRunner::new(42);
    if let Some(n) = threads {
        runner = runner.threads(n);
    }
    let members = 64;
    println!(
        "UQ sweep: {members} draws, pool width {} (override with --threads or EXADIGIT_THREADS)",
        runner.effective_threads()
    );

    let t0 = Instant::now();
    let summary =
        run_ensemble_on(&runner, &cfg, &jobs, 3_600, members, &UqPerturbations::default());
    let elapsed = t0.elapsed();

    println!(
        "\n  mean system power  {:7.3} MW  ± {:.3} MW (1σ)",
        summary.power_mean_mw, summary.power_std_mw
    );
    println!(
        "  90% confidence     [{:.3}, {:.3}] MW",
        summary.power_ci90_mw.0, summary.power_ci90_mw.1
    );
    println!(
        "  mean conversion loss {:5.3} MW, 90% CI [{:.3}, {:.3}] MW",
        summary.loss_mean_mw, summary.loss_ci90_mw.0, summary.loss_ci90_mw.1
    );
    println!(
        "\n  {} scenarios in {:.2?} — {:.1} scenarios/s",
        members,
        elapsed,
        members as f64 / elapsed.as_secs_f64()
    );
}
