//! Fork determinism: the contract the service layer's snapshot/fork
//! primitive rests on.
//!
//! `fork(snapshot at t).run_until(t + h)` must be `f64::to_bits`-identical
//! to a fresh run to `t + h` — same recorded series, same energy bits,
//! same pool state, same completions — across every scheduler policy, and
//! regardless of the pool width the forks are fanned out at. Two forks of
//! the same snapshot must also be bit-identical to each other (a cached
//! answer is only sound if recomputing it is pointless).
//!
//! One deliberate precision note: the fresh reference is advanced with
//! the same `run_until(t)`-then-`run_until(t + h)` call sequence as the
//! forked path. Pausing at `t` splits any steady-state gap spanning `t`
//! into two closed-form energy additions (`a·P + b·P` instead of
//! `(a+b)·P`), so a *single-call* run to `t + h` can differ in
//! `energy_j` by float associativity — about one ULP — while every
//! recorded series stays bit-identical (series sample the held power
//! snapshot, which gap splitting cannot change). The single-call
//! comparison is pinned separately at bit level for the series and at
//! 1e-12 relative for energy.

use exadigit_raps::config::{PartitionConfig, SystemConfig};
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_sim::ensemble::EnsembleRunner;
use proptest::prelude::*;

const POLICIES: [Policy; 4] =
    [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill];

fn small_config(nodes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::frontier();
    cfg.partitions = vec![PartitionConfig { name: "batch".into(), nodes, gpus_per_node: 4 }];
    cfg
}

fn sim(policy: Policy) -> RapsSimulation {
    RapsSimulation::new(small_config(96), PowerDelivery::StandardAC, policy, 15)
}

/// Everything the equivalence compares, all at bit level.
fn state_digest(s: &RapsSimulation) -> (Vec<u64>, Vec<u64>, u64, u64, usize, usize) {
    let out = s.outputs();
    (
        out.system_power_w.samples().map(|v| v.to_bits()).collect(),
        out.utilization.samples().map(|v| v.to_bits()).collect(),
        out.energy_j.to_bits(),
        s.report().jobs_completed,
        s.running_count(),
        s.pending_count(),
    )
}

fn arbitrary_jobs() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (1usize..=96, 30u64..2_400, 0u64..1_200, 0.0f32..1.0, 0.0f32..1.0),
        1..24,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, wall, submit, cu, gu))| {
                Job::new(i as u64, format!("j{i}"), nodes, wall, submit, cu, gu)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant, for every policy and at pool widths 1 and
    /// 4: a mid-run fork continued to the horizon is bit-identical to a
    /// fresh uninterrupted run, and two forks of one snapshot agree.
    #[test]
    fn fork_equals_fresh_run_across_policies_and_widths(
        jobs in arbitrary_jobs(),
        fork_at in 60u64..2_000,
        horizon in 60u64..2_400,
    ) {
        for policy in POLICIES {
            let target = fork_at + horizon;

            // Fresh reference, advanced with the same call sequence as
            // the forked path (see the module docs on why the pause
            // point is part of the energy-bit contract).
            let mut fresh = sim(policy);
            fresh.submit_jobs(jobs.clone());
            fresh.run_until(fork_at).unwrap();
            fresh.run_until(target).unwrap();
            let reference = state_digest(&fresh);

            // A single-call run only differs in the energy sum's
            // association, never in any recorded sample.
            let mut single = sim(policy);
            single.submit_jobs(jobs.clone());
            single.run_until(target).unwrap();
            let one_call = state_digest(&single);
            prop_assert_eq!(&one_call.0, &reference.0, "series must not see the pause");
            prop_assert_eq!(&one_call.1, &reference.1);
            let (ea, eb) = (f64::from_bits(one_call.2), f64::from_bits(reference.2));
            prop_assert!(
                (ea - eb).abs() <= 1e-12 * ea.abs().max(1.0),
                "energy beyond associativity: {} vs {}", ea, eb
            );

            // Snapshot at `fork_at`, then fan two forks per pool width.
            let mut live = sim(policy);
            live.submit_jobs(jobs.clone());
            live.run_until(fork_at).unwrap();

            for width in [1usize, 4] {
                let digests = EnsembleRunner::new(0).threads(width).map(
                    vec![(), ()],
                    |_ctx, ()| {
                        let mut fork = live.fork().unwrap();
                        fork.run_until(target).unwrap();
                        state_digest(&fork)
                    },
                );
                prop_assert_eq!(
                    &digests[0], &reference,
                    "policy {:?}, width {}: fork diverged from fresh run", policy, width
                );
                prop_assert_eq!(
                    &digests[0], &digests[1],
                    "policy {:?}, width {}: two forks of one snapshot diverged", policy, width
                );
            }

            // The snapshot source itself is untouched by the forks.
            prop_assert_eq!(live.now(), fork_at);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Aliasing safety under the copy-on-write series representation:
    /// however hard a fork is mutated — extra load submitted, a long
    /// recorded run across chunk-seal boundaries — neither the snapshot
    /// source nor a sibling fork taken earlier may see a single bit of
    /// it, and the sibling must still advance exactly as a fresh fork
    /// would.
    #[test]
    fn child_mutation_never_leaks_into_parent_or_sibling(
        jobs in arbitrary_jobs(),
        fork_at in 60u64..2_000,
        horizon in 60u64..2_400,
    ) {
        let mut live = sim(Policy::EasyBackfill);
        live.submit_jobs(jobs.clone());
        live.run_until(fork_at).unwrap();
        let parent_before = state_digest(&live);

        let mut sibling = live.fork().unwrap();
        let sibling_before = state_digest(&sibling);

        // Mutate one child hard: surge load plus a recorded run.
        let mut child = live.fork().unwrap();
        child.submit_jobs(vec![Job::new(9_999, "surge", 48, 600, fork_at, 0.9, 0.9)]);
        child.run_until(fork_at + horizon).unwrap();

        prop_assert_eq!(state_digest(&live), parent_before,
            "parent state mutated through a fork");
        prop_assert_eq!(state_digest(&sibling), sibling_before,
            "sibling fork mutated through another fork's run");

        // The untouched sibling continues bit-identically to a fork
        // taken after the child already diverged.
        let mut fresh = live.fork().unwrap();
        sibling.run_until(fork_at + horizon).unwrap();
        fresh.run_until(fork_at + horizon).unwrap();
        prop_assert_eq!(state_digest(&sibling), state_digest(&fresh));
    }
}

/// A fork of deep recorded history copies **zero** sealed chunks — the
/// copy-on-write representation makes fork cost O(touched state), not
/// O(recorded samples). Counted through the thread-local chunk
/// allocation counter, so everything here stays on one thread.
#[test]
fn fork_copies_zero_sealed_chunks() {
    use exadigit_sim::TimeSeries;

    let mut live = sim(Policy::Fcfs);
    live.submit_jobs(vec![
        Job::new(1, "long", 64, 30_000, 0, 0.7, 0.8),
        Job::new(2, "tail", 32, 12_000, 600, 0.5, 0.5),
    ]);
    live.run_until(40_000).unwrap(); // ~2 666 samples at the 15 s cadence
    assert!(
        live.outputs().system_power_w.sealed_chunk_count() >= 2,
        "test needs sealed history to be meaningful"
    );

    let before = TimeSeries::sealed_chunk_allocations();
    let fork = live.fork().unwrap();
    let after = TimeSeries::sealed_chunk_allocations();
    assert_eq!(after, before, "a fork must not allocate (copy) any sealed chunk");
    assert!(
        live.outputs().system_power_w.shares_sealed_chunks_with(&fork.outputs().system_power_w),
        "fork shares the power history by refcount"
    );
    assert!(
        live.outputs().utilization.shares_sealed_chunks_with(&fork.outputs().utilization),
        "fork shares the utilization history by refcount"
    );

    // Diverge the fork across further seal boundaries; the parent's
    // recorded bits stay exactly where they were.
    let parent_bits: Vec<u64> =
        live.outputs().system_power_w.samples().map(f64::to_bits).collect();
    let mut fork = fork;
    fork.run_until(80_000).unwrap();
    let parent_after: Vec<u64> =
        live.outputs().system_power_w.samples().map(f64::to_bits).collect();
    assert_eq!(parent_bits, parent_after, "parent history mutated by the fork's run");
    assert!(fork.outputs().system_power_w.len() > live.outputs().system_power_w.len());
}

/// Golden pin on the full Frontier system with a day-scale workload: the
/// fork seam lands in the middle of live queues, running jobs, and
/// pending events, and the continuation must not notice.
#[test]
fn fork_golden_frontier_day_slice() {
    let build = || {
        let mut s = RapsSimulation::new(
            SystemConfig::frontier(),
            PowerDelivery::StandardAC,
            Policy::EasyBackfill,
            15,
        );
        let mut gen = exadigit_raps::workload::WorkloadGenerator::new(
            exadigit_raps::workload::WorkloadParams::default(),
            2024,
        );
        s.submit_jobs(gen.generate_day(0));
        s
    };

    let mut fresh = build();
    fresh.run_until(5_000).unwrap(); // same call sequence as the forked path
    fresh.run_until(14_400).unwrap();

    let mut live = build();
    live.run_until(5_000).unwrap(); // mid-queue, off the 15 s grid
    let mut fork = live.fork().unwrap();
    fork.run_until(14_400).unwrap();

    assert_eq!(fresh.report(), fork.report());
    assert_eq!(fresh.pool(), fork.pool());
    let (a, b) = (fresh.outputs().system_power_w.to_vec(), fork.outputs().system_power_w.to_vec());
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "power sample {i} diverged");
    }
    assert_eq!(fresh.outputs().energy_j.to_bits(), fork.outputs().energy_j.to_bits());
}
