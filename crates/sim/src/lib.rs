//! Simulation substrate for ExaDigiT-rs.
//!
//! This crate provides the domain-independent machinery every other crate in
//! the workspace builds on:
//!
//! * [`clock`] — a discrete simulation clock with second resolution, matching
//!   the paper's Algorithm 1 (`TICK` is called every simulated second, the
//!   cooling model every 15 s).
//! * [`rng`] — a deterministic, seedable random number generator
//!   (xoshiro256\*\* seeded via splitmix64) plus the distributions the paper
//!   uses: the exponential inter-arrival law of eq. (5), normal / lognormal
//!   laws for workload synthesis, and uniform helpers.
//! * [`events`] — the discrete-event calendar: typed events (job arrival,
//!   job completion, cooling/trace quantum, record boundary, wet-bulb
//!   breakpoint) over the integral-second clock, with deterministic
//!   same-second ordering. This is what lets the RAPS kernel jump the
//!   clock straight to the next event instead of walking every second.
//! * [`series`] — fixed-step time series with resampling, used for both model
//!   outputs and synthetic telemetry.
//! * [`stats`] — online summary statistics (Welford), RMSE/MAE validation
//!   metrics (§IV of the paper), percentiles, and histograms.
//! * [`fmi`] — an "FMI-lite" co-simulation interface. The paper exports its
//!   Modelica cooling model as an FMU and couples it to RAPS through the FMI
//!   standard; we reproduce that architectural boundary with a Rust trait so
//!   models remain swappable.
//! * [`master`] — a simple multi-rate Jacobi co-simulation master that steps
//!   several [`fmi::CoSimModel`]s and moves values across declared
//!   connections.
//! * [`ensemble`] — the scenario-batch engine: [`ensemble::EnsembleRunner`]
//!   fans N independent scenarios (UQ draws, what-if variants, sweeps)
//!   across the thread-pool executor with per-scenario RNG streams and
//!   order-deterministic gathering (see `docs/ENSEMBLES.md`).
//!
//! Everything here is deliberately free of global state so that replays are
//! reproducible: the same seed and configuration always produce bit-identical
//! results (verified by the `determinism` integration test).

// Every public item must be documented; CI turns this (and all rustdoc
// warnings) into errors via `cargo doc` with RUSTDOCFLAGS=-Dwarnings.
#![warn(missing_docs)]

pub mod clock;
pub mod ensemble;
pub mod events;
pub mod fmi;
pub mod master;
pub mod rng;
pub mod series;
pub mod stats;

pub use clock::SimClock;
pub use ensemble::{EnsembleRunner, Scenario, ScenarioCtx};
pub use events::{Event, EventKind, EventQueue};
pub use fmi::{Causality, CoSimModel, FmiError, VarRef, VariableDescriptor, VariableRegistry};
pub use rng::Rng;
pub use series::TimeSeries;
pub use stats::{mae, rmse, Summary, Welford};
