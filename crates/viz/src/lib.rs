//! Visual analytics for ExaDigiT-rs.
//!
//! The paper's visual analytics module (§III-D) is an Unreal Engine 5
//! augmented-reality model plus a web dashboard. Per the substitution rule
//! (DESIGN.md) this crate keeps the module's *data contracts* and the
//! human-facing replay workflow while staying terminal-native:
//!
//! * [`scene`] — the L1 "descriptive twin": a scene graph of the machine
//!   room and central energy plant (racks, CDUs, pumps, towers, pipes)
//!   with transforms, levels of detail and telemetry bindings, exportable
//!   as JSON for any external renderer. The paper's Finding 7 stresses
//!   that "an interactive or programmable level of detail was the key" —
//!   LOD is a first-class field here.
//! * [`chart`] — sparklines and ASCII line charts for time series (the
//!   Fig. 8/9 style overlays in a terminal).
//! * [`heatmap`] — rack heat maps ("visualizing heat maps in the system"
//!   is a §III-A use case).
//! * [`dashboard`] — a panel-based terminal dashboard with a shared live
//!   value store, standing in for the ReactJS dashboard of §III-B6.

#![warn(missing_docs)]

pub mod chart;
pub mod dashboard;
pub mod heatmap;
pub mod scene;

pub use chart::{line_chart, sparkline};
pub use dashboard::{Dashboard, LiveStore, Panel};
pub use heatmap::rack_heatmap;
pub use scene::{AssetKind, LodLevel, SceneGraph, SceneNode};
