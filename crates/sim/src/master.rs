//! Multi-rate Jacobi co-simulation master.
//!
//! The paper couples RAPS (1 s ticks) to the cooling FMU (15 s steps).
//! This module generalises that pattern: several [`CoSimModel`]s advance on
//! a shared macro step, values flow across declared connections at macro
//! boundaries (Jacobi scheme: all reads happen before any writes, so model
//! order does not matter), and models whose `step_multiple` is greater than
//! one are only stepped every N macro steps — exactly the `mod 15` cadence
//! of Algorithm 1.

use crate::fmi::{CoSimModel, FmiError, VarRef};

/// A directed value connection between two models in the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Index of the source model in the master.
    pub src_model: usize,
    /// Output variable on the source model.
    pub src_var: VarRef,
    /// Index of the destination model.
    pub dst_model: usize,
    /// Input variable on the destination model.
    pub dst_var: VarRef,
}

/// One registered model plus its rate multiple.
struct Slot {
    model: Box<dyn CoSimModel>,
    /// Step every `step_multiple` macro steps (>= 1).
    step_multiple: u64,
}

/// The master algorithm: owns the models, the coupling graph and the clock.
pub struct CoSimMaster {
    slots: Vec<Slot>,
    connections: Vec<Connection>,
    /// Macro step size in seconds.
    macro_dt: f64,
    /// Macro steps taken since setup.
    steps: u64,
    time: f64,
}

impl CoSimMaster {
    /// Create a master with the given macro step (seconds).
    pub fn new(macro_dt: f64) -> Self {
        assert!(macro_dt > 0.0);
        CoSimMaster { slots: Vec::new(), connections: Vec::new(), macro_dt, steps: 0, time: 0.0 }
    }

    /// Register a model stepping every `step_multiple` macro steps.
    /// Returns the model's index for use in [`Connection`]s.
    pub fn add_model(&mut self, model: Box<dyn CoSimModel>, step_multiple: u64) -> usize {
        assert!(step_multiple >= 1);
        self.slots.push(Slot { model, step_multiple });
        self.slots.len() - 1
    }

    /// Declare a connection. Causality is validated lazily at exchange time
    /// by the models themselves.
    pub fn connect(&mut self, c: Connection) {
        assert!(c.src_model < self.slots.len() && c.dst_model < self.slots.len());
        self.connections.push(c);
    }

    /// Initialise all models at `start_time` and perform the initial
    /// exchange so inputs are populated before the first step.
    pub fn setup(&mut self, start_time: f64) -> Result<(), FmiError> {
        self.time = start_time;
        self.steps = 0;
        for slot in &mut self.slots {
            slot.model.setup(start_time);
        }
        self.exchange()
    }

    /// Current simulation time (seconds).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Move values across all connections (Jacobi: gather then scatter).
    fn exchange(&mut self) -> Result<(), FmiError> {
        // Gather first so that an earlier write cannot influence a later read.
        let mut staged = Vec::with_capacity(self.connections.len());
        for c in &self.connections {
            staged.push(self.slots[c.src_model].model.get_real(c.src_var)?);
        }
        for (c, v) in self.connections.iter().zip(staged) {
            self.slots[c.dst_model].model.set_real(c.dst_var, v)?;
        }
        Ok(())
    }

    /// Advance one macro step: exchange, then step every due model.
    pub fn step(&mut self) -> Result<(), FmiError> {
        self.exchange()?;
        let next_step = self.steps + 1;
        for slot in &mut self.slots {
            if next_step.is_multiple_of(slot.step_multiple) {
                let dt = self.macro_dt * slot.step_multiple as f64;
                // The model last advanced at a multiple of its own period.
                let model_time = self.time - self.macro_dt * (slot.step_multiple - 1) as f64;
                slot.model.do_step(model_time, dt)?;
            }
        }
        self.steps = next_step;
        self.time += self.macro_dt;
        Ok(())
    }

    /// Run `n` macro steps.
    pub fn run(&mut self, n: u64) -> Result<(), FmiError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Borrow a model for output inspection.
    pub fn model(&self, idx: usize) -> &dyn CoSimModel {
        self.slots[idx].model.as_ref()
    }

    /// Mutably borrow a model (e.g. to force an input between steps).
    pub fn model_mut(&mut self, idx: usize) -> &mut dyn CoSimModel {
        self.slots[idx].model.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmi::{Causality, VariableDescriptor, VariableRegistry};

    /// Emits a constant.
    struct Source {
        vars: Vec<VariableDescriptor>,
        value: f64,
    }
    impl Source {
        fn new(value: f64) -> Self {
            let mut reg = VariableRegistry::new();
            reg.output("out", "W");
            Source { vars: reg.into_vec(), value }
        }
    }
    impl CoSimModel for Source {
        fn instance_name(&self) -> &str {
            "source"
        }
        fn variables(&self) -> &[VariableDescriptor] {
            &self.vars
        }
        fn setup(&mut self, _t: f64) {}
        fn set_real(&mut self, vr: VarRef, _v: f64) -> Result<(), FmiError> {
            Err(FmiError::WrongCausality { vr, expected: Causality::Input })
        }
        fn get_real(&self, vr: VarRef) -> Result<f64, FmiError> {
            if vr.0 == 0 {
                Ok(self.value)
            } else {
                Err(FmiError::UnknownVariable(vr))
            }
        }
        fn do_step(&mut self, _t: f64, _dt: f64) -> Result<(), FmiError> {
            Ok(())
        }
        fn reset(&mut self) {}
    }

    /// Integrates its input; also counts how many times it was stepped.
    struct Sink {
        vars: Vec<VariableDescriptor>,
        input: f64,
        acc: f64,
        steps: u64,
    }
    impl Sink {
        fn new() -> Self {
            let mut reg = VariableRegistry::new();
            reg.input("in", "W");
            reg.output("acc", "J");
            Sink { vars: reg.into_vec(), input: 0.0, acc: 0.0, steps: 0 }
        }
    }
    impl CoSimModel for Sink {
        fn instance_name(&self) -> &str {
            "sink"
        }
        fn variables(&self) -> &[VariableDescriptor] {
            &self.vars
        }
        fn setup(&mut self, _t: f64) {
            self.acc = 0.0;
            self.steps = 0;
        }
        fn set_real(&mut self, vr: VarRef, v: f64) -> Result<(), FmiError> {
            if vr.0 == 0 {
                self.input = v;
                Ok(())
            } else {
                Err(FmiError::UnknownVariable(vr))
            }
        }
        fn get_real(&self, vr: VarRef) -> Result<f64, FmiError> {
            match vr.0 {
                0 => Ok(self.input),
                1 => Ok(self.acc),
                _ => Err(FmiError::UnknownVariable(vr)),
            }
        }
        fn do_step(&mut self, _t: f64, dt: f64) -> Result<(), FmiError> {
            self.acc += self.input * dt;
            self.steps += 1;
            Ok(())
        }
        fn reset(&mut self) {
            self.input = 0.0;
            self.acc = 0.0;
            self.steps = 0;
        }
    }

    #[test]
    fn values_flow_across_connection() {
        let mut master = CoSimMaster::new(1.0);
        let src = master.add_model(Box::new(Source::new(3.0)), 1);
        let dst = master.add_model(Box::new(Sink::new()), 1);
        master.connect(Connection {
            src_model: src,
            src_var: VarRef(0),
            dst_model: dst,
            dst_var: VarRef(0),
        });
        master.setup(0.0).unwrap();
        master.run(10).unwrap();
        assert_eq!(master.model(dst).get_real(VarRef(1)).unwrap(), 30.0);
    }

    #[test]
    fn multi_rate_steps_slow_model_every_n() {
        // Macro step 1 s, slow model at multiple 15: after 60 macro steps it
        // must have stepped 4 times with dt = 15 — the paper's cadence.
        let mut master = CoSimMaster::new(1.0);
        let src = master.add_model(Box::new(Source::new(2.0)), 1);
        let slow = master.add_model(Box::new(Sink::new()), 15);
        master.connect(Connection {
            src_model: src,
            src_var: VarRef(0),
            dst_model: slow,
            dst_var: VarRef(0),
        });
        master.setup(0.0).unwrap();
        master.run(60).unwrap();
        // 4 steps x 15 s x 2 W = 120 J
        assert_eq!(master.model(slow).get_real(VarRef(1)).unwrap(), 120.0);
    }

    #[test]
    fn time_advances_by_macro_dt() {
        let mut master = CoSimMaster::new(0.5);
        master.setup(10.0).unwrap();
        master.run(4).unwrap();
        assert!((master.time() - 12.0).abs() < 1e-12);
    }
}
