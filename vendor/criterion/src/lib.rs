//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the bench targets use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `black_box`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros) with a simple
//! measure-and-print harness: each benchmark is warmed up once, then timed
//! over enough iterations to fill a small measurement window, and the
//! mean ns/iter is printed. Substring filters work like real criterion's
//! (`cargo bench --bench <target> -- <filter>` runs only benchmarks whose
//! full `group/name` id contains a non-flag argument). No statistics,
//! plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost — accepted, ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
}

impl Bencher {
    fn new(measurement_time: Duration) -> Self {
        Bencher { measurement_time, mean_ns: f64::NAN }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement_time || iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
            if spent >= self.measurement_time || iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = spent.as_nanos() as f64 / iters as f64;
    }
}

/// Apply the CLI's substring filters: a benchmark runs when its full id
/// contains any non-flag argument, or when no filter was given. Flags
/// (`--bench` and friends, injected by cargo) are ignored.
fn matches_filter(full: &str) -> bool {
    let mut saw_filter = false;
    for arg in std::env::args().skip(1) {
        if arg.starts_with('-') {
            continue;
        }
        if full.contains(&arg) {
            return true;
        }
        saw_filter = true;
    }
    !saw_filter
}

fn run_one(group: Option<&str>, id: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if !matches_filter(&full) {
        return;
    }
    let mut b = Bencher::new(measurement_time);
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("{full:<48} (no measurement)");
    } else if b.mean_ns >= 1e6 {
        println!("{full:<48} {:>12.3} ms/iter", b.mean_ns / 1e6);
    } else if b.mean_ns >= 1e3 {
        println!("{full:<48} {:>12.3} µs/iter", b.mean_ns / 1e3);
    } else {
        println!("{full:<48} {:>12.1} ns/iter", b.mean_ns);
    }
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Much shorter than real criterion's 5 s: these benches exist to
        // compile and give order-of-magnitude numbers, not statistics.
        Criterion { measurement_time: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.to_string(), self.measurement_time, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time.min(Duration::from_millis(500));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| black_box(2u64 + 2));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn batched_measures() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.mean_ns > 0.0);
    }
}
